//! Channel-activity tracing: record who occupied the medium when, and
//! render it as an ASCII timeline.
//!
//! Enable with [`crate::config::SimConfig::record_trace`]; the recorded
//! [`ChannelTrace`] comes back in [`crate::config::RunResults::trace`] and
//! renders the kind of picture the paper draws in Fig. 1/2/4/5:
//!
//! ```text
//! wifi   ████████████░░░░░░░░░░███████████████░░░░░░░░░░░░█████
//! cts    ·····▌··························▌·······················
//! zigbee ······▓▓▓▓▓▓▓▓··················▓▓▓▓▓▓▓▓▓▓▓▓▓▓·········
//! signal ····▲···························▲·······················
//! ```

use bicord_sim::{SimDuration, SimTime};

/// What occupied the channel during a span.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpanKind {
    /// A Wi-Fi data frame.
    WifiData,
    /// A Wi-Fi CTS(-to-self) reservation frame.
    WifiCts,
    /// A ZigBee data or ACK frame from the given node.
    ZigbeeData {
        /// Node index (0 = primary).
        node: usize,
    },
    /// A ZigBee control (signaling) packet from the given node.
    ZigbeeControl {
        /// Node index (0 = primary).
        node: usize,
    },
    /// A reserved white space (from CTS end to NAV expiry).
    WhiteSpace,
}

/// One recorded channel-occupancy span.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceSpan {
    /// Span start.
    pub start: SimTime,
    /// Span end.
    pub end: SimTime,
    /// Who/what occupied the channel.
    pub kind: SpanKind,
}

/// A recording of channel activity over a run.
///
/// # Example
///
/// ```
/// use bicord_scenario::trace::{ChannelTrace, SpanKind};
/// use bicord_sim::SimTime;
///
/// let mut trace = ChannelTrace::new();
/// trace.record(SimTime::from_millis(0), SimTime::from_millis(10), SpanKind::WifiData);
/// trace.record(SimTime::from_millis(12), SimTime::from_millis(14), SpanKind::ZigbeeData { node: 0 });
/// let art = trace.render(SimTime::ZERO, SimTime::from_millis(20), 40);
/// assert!(art.contains("wifi"));
/// assert!(art.contains("zigbee"));
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ChannelTrace {
    spans: Vec<TraceSpan>,
}

impl ChannelTrace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        ChannelTrace::default()
    }

    /// Records one span.
    ///
    /// # Panics
    ///
    /// Panics if `end <= start`.
    pub fn record(&mut self, start: SimTime, end: SimTime, kind: SpanKind) {
        assert!(end > start, "trace span must have positive length");
        self.spans.push(TraceSpan { start, end, kind });
    }

    /// All recorded spans, in recording order.
    pub fn spans(&self) -> &[TraceSpan] {
        &self.spans
    }

    /// Number of recorded spans.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// `true` if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Total recorded airtime of a kind within `[from, to)`.
    pub fn airtime(&self, kind: SpanKind, from: SimTime, to: SimTime) -> SimDuration {
        self.spans
            .iter()
            .filter(|s| s.kind == kind)
            .map(|s| {
                let lo = s.start.max(from);
                let hi = s.end.min(to);
                hi.checked_since(lo).unwrap_or(SimDuration::ZERO)
            })
            .sum()
    }

    /// Renders the window `[from, to)` as a four-lane ASCII timeline of
    /// `width` characters per lane.
    ///
    /// Lanes: `wifi` (data frames), `cts`/`ws` (reservations and the white
    /// spaces they open), `zigbee` (data + ACK), `signal` (control
    /// packets). A cell is marked if any span of the lane's kind overlaps
    /// the cell's time slice.
    ///
    /// # Panics
    ///
    /// Panics if `to <= from` or `width == 0`.
    pub fn render(&self, from: SimTime, to: SimTime, width: usize) -> String {
        assert!(to > from, "render window must have positive length");
        assert!(width > 0, "render width must be positive");
        let window = to - from;
        let cell = |i: usize| -> (SimTime, SimTime) {
            let lo = from + window.mul_f64(i as f64 / width as f64);
            let hi = from + window.mul_f64((i + 1) as f64 / width as f64);
            (lo, hi)
        };
        let mut lanes = vec![
            ("wifi  ", vec!['.'; width]),
            ("cts/ws", vec!['.'; width]),
            ("zigbee", vec!['.'; width]),
            ("signal", vec!['.'; width]),
        ];
        for span in &self.spans {
            let (lane, mark) = match span.kind {
                SpanKind::WifiData => (0usize, '#'),
                SpanKind::WifiCts => (1, '|'),
                SpanKind::WhiteSpace => (1, '_'),
                SpanKind::ZigbeeData { .. } => (2, '='),
                SpanKind::ZigbeeControl { .. } => (3, '^'),
            };
            for i in 0..width {
                let (lo, hi) = cell(i);
                if span.start < hi && span.end > lo {
                    let slot = &mut lanes[lane].1[i];
                    // CTS beats white-space shading in the shared lane.
                    if !(*slot == '|' && mark == '_') {
                        *slot = mark;
                    }
                }
            }
        }
        let mut out = String::new();
        out.push_str(&format!(
            "channel timeline {from} .. {to} ({} per cell)\n",
            window / width as u64
        ));
        for (label, cells) in lanes {
            out.push_str(label);
            out.push(' ');
            out.extend(cells);
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimTime {
        SimTime::from_millis(v)
    }

    #[test]
    fn records_and_reports_spans() {
        let mut t = ChannelTrace::new();
        assert!(t.is_empty());
        t.record(ms(0), ms(10), SpanKind::WifiData);
        t.record(ms(12), ms(14), SpanKind::ZigbeeData { node: 0 });
        assert_eq!(t.len(), 2);
        assert_eq!(t.spans()[0].kind, SpanKind::WifiData);
    }

    #[test]
    #[should_panic(expected = "positive length")]
    fn zero_length_span_rejected() {
        let mut t = ChannelTrace::new();
        t.record(ms(5), ms(5), SpanKind::WifiData);
    }

    #[test]
    fn airtime_clips_to_window() {
        let mut t = ChannelTrace::new();
        t.record(ms(0), ms(10), SpanKind::WifiData);
        t.record(ms(20), ms(30), SpanKind::WifiData);
        t.record(ms(5), ms(8), SpanKind::WhiteSpace);
        // Full window:
        assert_eq!(
            t.airtime(SpanKind::WifiData, ms(0), ms(30)),
            SimDuration::from_millis(20)
        );
        // Clipped window catches half of the first span:
        assert_eq!(
            t.airtime(SpanKind::WifiData, ms(5), ms(25)),
            SimDuration::from_millis(10)
        );
        // Kind filtering:
        assert_eq!(
            t.airtime(SpanKind::WhiteSpace, ms(0), ms(30)),
            SimDuration::from_millis(3)
        );
    }

    #[test]
    fn render_marks_the_right_cells() {
        let mut t = ChannelTrace::new();
        t.record(ms(0), ms(50), SpanKind::WifiData);
        t.record(ms(50), ms(52), SpanKind::WifiCts);
        t.record(ms(52), ms(80), SpanKind::WhiteSpace);
        t.record(ms(55), ms(75), SpanKind::ZigbeeData { node: 0 });
        t.record(ms(45), ms(49), SpanKind::ZigbeeControl { node: 0 });
        let art = t.render(ms(0), ms(100), 50);
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 5);
        let wifi = lines[1];
        let ctsws = lines[2];
        let zigbee = lines[3];
        let signal = lines[4];
        // First half of the wifi lane is busy, last fifth idle:
        assert!(wifi.contains('#'));
        assert!(wifi.trim_end().ends_with('.'));
        // The reservation lane carries both the CTS tick and the shading:
        assert!(ctsws.contains('|'));
        assert!(ctsws.contains('_'));
        // ZigBee data inside the white space, control before it:
        assert!(zigbee.contains('='));
        assert!(signal.contains('^'));
    }

    #[test]
    fn render_window_scales() {
        let mut t = ChannelTrace::new();
        t.record(ms(10), ms(11), SpanKind::WifiData);
        // Zoomed out, the 1 ms frame still occupies at least one cell.
        let art = t.render(ms(0), ms(1000), 20);
        assert!(art.lines().nth(1).unwrap().contains('#'));
        // A window that excludes it shows an empty lane.
        let art = t.render(ms(500), ms(1000), 20);
        assert!(!art.lines().nth(1).unwrap().contains('#'));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn render_empty_window_rejected() {
        let t = ChannelTrace::new();
        let _ = t.render(ms(5), ms(5), 10);
    }
}
