//! # bicord-scenario
//!
//! Full-system wiring of the BiCord evaluation: the office deployment of
//! Fig. 6, the discrete-event runtime connecting medium, MACs, CSI,
//! coordinator/client (or the ECC baseline), workloads, and metrics — and
//! one runner per experiment of Sec. VIII.
//!
//! * [`geometry`] — the E/F Wi-Fi pair and ZigBee locations A–D,
//! * [`config`] — scenario configuration and result structures,
//! * [`sim`] — [`sim::CoexistenceSim`], the event-driven runtime,
//! * [`experiments`] — parameter sweeps regenerating every table/figure.
//!
//! # Example
//!
//! ```
//! use bicord_scenario::config::SimConfig;
//! use bicord_scenario::geometry::Location;
//! use bicord_scenario::sim::CoexistenceSim;
//! use bicord_sim::SimDuration;
//!
//! let config = SimConfig::builder()
//!     .location(Location::A)
//!     .seed(1)
//!     .duration(SimDuration::from_secs(2))
//!     .build()
//!     .expect("valid config");
//! let results = CoexistenceSim::new(config).unwrap().run();
//! assert!(results.zigbee.delivered > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// All internal callers have migrated off the deprecated
// `CoexistenceSim::new_unchecked` shim; deny keeps it that way while the
// shim itself survives at the public API boundary.
#![deny(deprecated)]

pub mod config;
pub mod dense_city;
pub mod experiments;
pub mod geometry;
pub mod sim;
pub mod trace;

pub use config::{ConfigError, Mode, RunResults, SimConfig, SimConfigBuilder};
pub use geometry::Location;
pub use sim::CoexistenceSim;
