//! Dense city-block scenario: a grid of apartments, each with one Wi-Fi
//! AP and a ZigBee cluster, sized from a declarative block × density
//! parameterization.
//!
//! The full [`CoexistenceSim`](crate::sim::CoexistenceSim) runtime
//! models one coordinator cell in protocol detail; this scenario trades
//! protocol fidelity for *scale*. Every device runs a minimal
//! CCA-then-transmit loop against the shared [`Medium`], which is
//! exactly the workload the medium's spatial culling grid exists for:
//! thousands of co-located BSS/PAN clusters where only a local
//! neighbourhood matters per observer. The run loop is a pure function
//! of `(config, seed)` — byte-identical across thread counts and
//! platforms (asserted by `tests/parallel_determinism.rs`) — so it
//! doubles as a determinism fixture at world sizes the protocol runtime
//! cannot reach.
//!
//! # Example
//!
//! ```
//! use bicord_scenario::dense_city::DenseCityConfig;
//!
//! let config = DenseCityConfig::with_device_count(100, 7);
//! assert!(config.device_count() >= 100);
//! let results = config.run();
//! assert!(results.transmissions > 0);
//! ```

use bicord_mac::frames::{DeviceId, Payload};
use bicord_mac::medium::{
    ChannelConfig, CullingConfig, Medium, MediumCacheStats, MediumGridStats, TxId,
};
use bicord_phy::geometry::Point;
use bicord_phy::pathloss::PathLossModel;
use bicord_phy::spectrum::{Band, WifiChannel, ZigbeeChannel};
use bicord_phy::units::Dbm;
use bicord_sim::dist::exponential_duration;
use bicord_sim::event::EventQueue;
use bicord_sim::{stream_rng, SeedDomain, SimDuration, SimTime};
use rand::rngs::StdRng;

/// Wi-Fi channels assigned round-robin per apartment (the classic
/// non-overlapping 1/6/11 plan).
const WIFI_CHANNELS: [u8; 3] = [1, 6, 11];

/// ZigBee channels alternated per apartment: 17 (2415 MHz) sits inside
/// the Wi-Fi ch 1 passband and 22 (2460 MHz) inside ch 11 — so every
/// ZigBee node suffers cross-technology interference from some
/// apartments' APs while staying clear of others. Together with
/// [`WIFI_CHANNELS`] the scenario uses 5 distinct bands — 25
/// `(tx, listening)` pairs, comfortably inside the medium's
/// band-overlap memo capacity.
const ZIGBEE_CHANNELS: [u8; 2] = [17, 22];

/// Declarative description of one city block.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DenseCityConfig {
    /// Apartments per row.
    pub apartments_x: u32,
    /// Apartments per column.
    pub apartments_y: u32,
    /// Apartment edge length, metres.
    pub apartment_m: f64,
    /// ZigBee nodes per apartment (each apartment also has one Wi-Fi AP).
    pub zigbee_per_apartment: u32,
    /// Master seed; every device derives its own RNG stream from it.
    pub seed: u64,
    /// Simulated duration.
    pub duration: SimDuration,
    /// Propagation. The residential default is lossier than the office
    /// calibration (walls between apartments), which is what makes
    /// aggressive culling radii physically honest.
    pub path_loss: PathLossModel,
    /// Per-transmission fading std-dev, dB.
    pub fading_sigma_db: f64,
    /// Spatial culling parameters (see [`CullingConfig`]).
    pub culling: CullingConfig,
    /// Wi-Fi AP transmit power.
    pub wifi_power: Dbm,
    /// ZigBee node transmit power.
    pub zigbee_power: Dbm,
    /// Wi-Fi energy-detection busy threshold.
    pub wifi_busy: Dbm,
    /// ZigBee CCA busy threshold.
    pub zigbee_busy: Dbm,
    /// Mean Wi-Fi inter-arrival time.
    pub wifi_mean_interval: SimDuration,
    /// Mean ZigBee inter-arrival time.
    pub zigbee_mean_interval: SimDuration,
}

impl DenseCityConfig {
    /// A residential block of `apartments_x × apartments_y` apartments
    /// with `zigbee_per_apartment` ZigBee nodes each.
    ///
    /// 10 m apartments, exponent-4 walls-included propagation (50 dB at
    /// 1 m), 15 dBm APs, −3 dBm ZigBee, and a culling floor of −75 dBm
    /// with an 8 dB shadowing/fading margin — hearing radii of ~15.8 m
    /// (Wi-Fi) and ~5.6 m (ZigBee), so queries see a couple of
    /// apartment rings, not the whole city, and per-query cost stays
    /// flat as the block grows. Culled links have a mean budget below
    /// `floor − margin` = −83 dBm, 6 dB under the most sensitive CCA
    /// busy threshold: links CCA could act on are never culled.
    pub fn residential(
        apartments_x: u32,
        apartments_y: u32,
        zigbee_per_apartment: u32,
        seed: u64,
    ) -> Self {
        DenseCityConfig {
            apartments_x,
            apartments_y,
            apartment_m: 10.0,
            zigbee_per_apartment,
            seed,
            duration: SimDuration::from_millis(50),
            path_loss: PathLossModel::new(50.0, 4.0, 1.0, 4.0, 0.1),
            fading_sigma_db: 3.0,
            culling: CullingConfig {
                max_tx_power: Dbm::new(15.0),
                floor: Dbm::new(-75.0),
                margin_db: 8.0,
            },
            wifi_power: Dbm::new(15.0),
            zigbee_power: Dbm::new(-3.0),
            wifi_busy: Dbm::new(-62.0),
            zigbee_busy: Dbm::new(-77.0),
            wifi_mean_interval: SimDuration::from_millis(4),
            zigbee_mean_interval: SimDuration::from_millis(12),
        }
    }

    /// The smallest near-square residential block with at least
    /// `devices` devices (3 ZigBee nodes + 1 AP per apartment).
    pub fn with_device_count(devices: u32, seed: u64) -> Self {
        let per_apartment = 4; // 1 AP + 3 ZigBee
        let apartments = devices.div_ceil(per_apartment);
        let side = (f64::from(apartments)).sqrt().ceil() as u32;
        let rows = apartments.div_ceil(side.max(1));
        DenseCityConfig::residential(side.max(1), rows.max(1), 3, seed)
    }

    /// Total device count (one AP plus the ZigBee cluster per apartment).
    pub fn device_count(&self) -> u32 {
        self.apartments_x * self.apartments_y * (1 + self.zigbee_per_apartment)
    }

    /// The generated device roster, in device-id order.
    pub fn devices(&self) -> Vec<CityDevice> {
        let mut out = Vec::with_capacity(self.device_count() as usize);
        let mut id = 0u32;
        for ay in 0..self.apartments_y {
            for ax in 0..self.apartments_x {
                let apartment = ay * self.apartments_x + ax;
                let ox = f64::from(ax) * self.apartment_m;
                let oy = f64::from(ay) * self.apartment_m;
                let center = Point::new(ox + self.apartment_m / 2.0, oy + self.apartment_m / 2.0);
                let wifi_ch = WIFI_CHANNELS[(apartment % 3) as usize];
                let zigbee_ch = ZIGBEE_CHANNELS[(apartment % 2) as usize];
                out.push(CityDevice {
                    id: DeviceId::new(id),
                    position: center,
                    band: WifiChannel::new(wifi_ch)
                        .expect("static channel plan is valid")
                        .band(),
                    power: self.wifi_power,
                    busy: self.wifi_busy,
                    mean_interval: self.wifi_mean_interval,
                    airtime: SimDuration::from_millis(1),
                    wifi: true,
                });
                id += 1;
                for k in 0..self.zigbee_per_apartment {
                    // Fixed fractional offsets inside the apartment: no
                    // RNG in geometry, so the layout is a pure function
                    // of the config.
                    let frac = f64::from(k + 1) / f64::from(self.zigbee_per_apartment + 1);
                    let dx = (frac - 0.5) * self.apartment_m * 0.8;
                    let dy = if k % 2 == 0 { 1.0 } else { -1.0 } * self.apartment_m * 0.25;
                    out.push(CityDevice {
                        id: DeviceId::new(id),
                        position: center.offset(dx, dy),
                        band: ZigbeeChannel::new(zigbee_ch)
                            .expect("static channel plan is valid")
                            .band(),
                        power: self.zigbee_power,
                        busy: self.zigbee_busy,
                        mean_interval: self.zigbee_mean_interval,
                        airtime: SimDuration::from_millis(4),
                        wifi: false,
                    });
                    id += 1;
                }
            }
        }
        out
    }

    /// A medium populated with every device of the block (no traffic).
    pub fn build_medium(&self) -> (Medium, Vec<CityDevice>) {
        let devices = self.devices();
        let mut medium = Medium::new(
            ChannelConfig {
                path_loss: self.path_loss,
                fading_sigma_db: self.fading_sigma_db,
                culling: self.culling,
            },
            self.seed,
        );
        for d in &devices {
            medium.add_device(d.id, d.position);
        }
        (medium, devices)
    }

    /// Runs the CCA-then-transmit loop over the whole block and returns
    /// aggregate results.
    ///
    /// # Panics
    ///
    /// Panics if the block is empty (zero apartments) or the duration is
    /// zero.
    pub fn run(&self) -> DenseCityResults {
        assert!(self.device_count() > 0, "dense_city block has no devices");
        assert!(
            self.duration > SimDuration::ZERO,
            "dense_city duration must be positive"
        );
        let (mut medium, devices) = self.build_medium();
        let end_at = SimTime::ZERO + self.duration;

        // One RNG stream per device, derived from the master seed: the
        // arrival/backoff draw order per device is independent of global
        // event interleaving, which is what makes the run a pure
        // function of (config, seed).
        let mut rngs: Vec<StdRng> = (0..devices.len())
            .map(|i| stream_rng(self.seed, SeedDomain::Aux, i as u64))
            .collect();

        let mut queue: EventQueue<CityEvent> = EventQueue::with_capacity(devices.len() * 2);
        for (i, d) in devices.iter().enumerate() {
            let at = SimTime::ZERO + exponential_duration(&mut rngs[i], d.mean_interval);
            queue.push(at, CityEvent::Arrival(i as u32));
        }

        let mut results = DenseCityResults {
            devices: devices.len() as u32,
            attempts: 0,
            deferrals: 0,
            transmissions: 0,
            mean_sensed_dbm: 0.0,
            grid: MediumGridStats::default(),
            cache: MediumCacheStats::default(),
            simulated: self.duration,
        };
        let mut sensed_sum_dbm = 0.0f64;

        while let Some((now, event)) = queue.pop() {
            match event {
                CityEvent::Arrival(idx) => {
                    if now >= end_at {
                        continue;
                    }
                    let d = &devices[idx as usize];
                    results.attempts += 1;
                    let sensed = medium.sensed_power(d.id, &d.band, now, None);
                    sensed_sum_dbm += sensed.to_dbm().value();
                    if sensed.to_dbm() >= d.busy {
                        // Busy: defer and re-attempt after a short
                        // exponential backoff.
                        results.deferrals += 1;
                        let backoff = exponential_duration(&mut rngs[idx as usize], d.airtime / 2);
                        queue.push(now + backoff, CityEvent::Arrival(idx));
                    } else {
                        let tx = medium.begin_transmission(
                            d.id,
                            d.power,
                            d.band,
                            now,
                            now + d.airtime,
                            Payload::Noise,
                        );
                        results.transmissions += 1;
                        queue.push(now + d.airtime, CityEvent::TxEnd(tx));
                        let next = exponential_duration(&mut rngs[idx as usize], d.mean_interval);
                        queue.push(now + d.airtime + next, CityEvent::Arrival(idx));
                    }
                }
                CityEvent::TxEnd(tx) => {
                    medium.end_transmission(tx);
                }
            }
        }

        results.mean_sensed_dbm = if results.attempts > 0 {
            sensed_sum_dbm / results.attempts as f64
        } else {
            0.0
        };
        results.grid = medium.grid_stats();
        results.cache = medium.cache_stats();
        results
    }
}

/// One generated device of the block.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CityDevice {
    /// Medium identity.
    pub id: DeviceId,
    /// Static position.
    pub position: Point,
    /// Operating band.
    pub band: Band,
    /// Transmit power.
    pub power: Dbm,
    /// CCA busy threshold.
    pub busy: Dbm,
    /// Mean inter-arrival time of the device's traffic.
    pub mean_interval: SimDuration,
    /// Frame airtime.
    pub airtime: SimDuration,
    /// `true` for the Wi-Fi AP, `false` for ZigBee nodes.
    pub wifi: bool,
}

/// Discrete events of the run loop.
enum CityEvent {
    /// Device `i` wants to transmit (CCA first).
    Arrival(u32),
    /// A transmission ended.
    TxEnd(TxId),
}

/// Aggregate outcome of one dense-city run. `Debug`-format it for a
/// bitwise determinism fingerprint (every field is integer or exact
/// f64).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DenseCityResults {
    /// Devices simulated.
    pub devices: u32,
    /// CCA attempts (first tries plus post-backoff retries).
    pub attempts: u64,
    /// Attempts that found the channel busy.
    pub deferrals: u64,
    /// Transmissions placed on the medium.
    pub transmissions: u64,
    /// Mean sensed power across all CCA attempts, dBm.
    pub mean_sensed_dbm: f64,
    /// Spatial-culling effectiveness over the whole run.
    pub grid: MediumGridStats,
    /// Medium cache effectiveness over the whole run.
    pub cache: MediumCacheStats,
    /// Simulated duration.
    pub simulated: SimDuration,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn device_count_matches_roster() {
        let c = DenseCityConfig::residential(3, 2, 3, 1);
        assert_eq!(c.device_count(), 24);
        assert_eq!(c.devices().len(), 24);
    }

    #[test]
    fn with_device_count_reaches_the_target() {
        for n in [1, 4, 100, 1000, 10_000] {
            let c = DenseCityConfig::with_device_count(n, 9);
            assert!(c.device_count() >= n, "asked {n}, got {}", c.device_count());
        }
    }

    #[test]
    fn channel_plan_uses_five_bands() {
        let c = DenseCityConfig::residential(4, 4, 2, 1);
        let mut bands: Vec<Band> = c.devices().iter().map(|d| d.band).collect();
        bands.sort_by(|a, b| {
            (a.low_mhz, a.high_mhz)
                .partial_cmp(&(b.low_mhz, b.high_mhz))
                .unwrap()
        });
        bands.dedup();
        assert_eq!(bands.len(), 5);
    }

    #[test]
    fn run_is_deterministic_and_culls() {
        let c = DenseCityConfig::residential(5, 5, 3, 21);
        let a = c.run();
        let b = c.run();
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
        assert!(a.transmissions > 0);
        assert!(a.deferrals > 0, "a dense block must see busy channels");
        // A 50 m block spans four 15.8 m grid cells per axis, so corner
        // observers cull the far edge outright, and the ~5.6 m ZigBee
        // hearing radius rejects most gathered candidates by distance.
        assert!(a.grid.tx_culled > 0, "{:?}", a.grid);
        assert!(a.grid.tx_out_of_range > 0, "{:?}", a.grid);
    }

    #[test]
    fn different_seeds_differ() {
        let a = DenseCityConfig::residential(3, 3, 3, 1).run();
        let b = DenseCityConfig::residential(3, 3, 3, 2).run();
        assert_ne!(format!("{a:?}"), format!("{b:?}"));
    }
}
