//! The event-driven coexistence runtime.
//!
//! [`CoexistenceSim`] wires every substrate together into the paper's
//! office scenario: a saturated (or paced) Wi-Fi link E→F, one or more
//! ZigBee pairs Z→R at Fig. 6 locations, the shared medium with path
//! loss / shadowing / fading, ambient noise bursts, the CSI stream at F,
//! and one of four coordination modes (BiCord, ECC, unprotected CSMA, or
//! the Table I/II signaling-trial harness).
//!
//! All protocol logic lives in the sans-IO state machines of
//! `bicord-mac`, `bicord-core` and `bicord-ctc`; this module owns the event
//! queue and routes timers, carrier-sense transitions, transmissions,
//! receptions and CSI samples between them.
//!
//! Multiple ZigBee nodes (Sec. VI's "multiple ZigBee nodes with different
//! traffic pattern") are supported via [`crate::config::SimConfig::extra_nodes`]:
//! every node runs its own MAC/receiver/client, they carrier-sense each
//! other, and the single Wi-Fi-side allocator must serve the union of
//! their requests.

use std::collections::{HashMap, VecDeque};

use rand::rngs::StdRng;

use bicord_core::client::{BicordClient, ClientAction, ClientConfig, ClientTimer};
use bicord_core::coordinator::{
    BicordCoordinator, CoordinatorAction, CoordinatorConfig, CoordinatorTimer,
};
use bicord_core::signaling::CsiDetector;
use bicord_ctc::ecc::{EccClientAction, EccConfig, EccWifiScheduler, EccZigbeeClient};
use bicord_mac::frames::{DeviceId, Payload, WifiFrameKind, WifiPriority, ZigbeeFrameKind};
use bicord_mac::medium::{ChannelConfig, Medium, Transmission, TxId};
use bicord_mac::wifi::{WifiAction, WifiFrameSpec, WifiMac, WifiTimer};
use bicord_mac::zigbee::{ZigbeeAction, ZigbeeMac, ZigbeeReceiver, ZigbeeTimer};
use bicord_metrics::delay::DelayTracker;
use bicord_metrics::precision_recall::PrecisionRecall;
use bicord_metrics::throughput::ThroughputTracker;
use bicord_metrics::utilization::{Occupant, UtilizationTracker};
use bicord_phy::csi::{CsiModel, Disturbance};
use bicord_phy::interferers::{generate_trace, TraceConfig, TRACE_DURATION};
use bicord_phy::noise::{NoiseBurst, WIFI_NOISE_FLOOR, ZIGBEE_NOISE_FLOOR};
use bicord_phy::reception::PrrModel;
use bicord_phy::spectrum::{Band, WifiChannel, ZigbeeChannel};
use bicord_phy::units::{Dbm, MilliWatt};
use bicord_sim::guard::{GuardViolation, NoopGuard, SimGuard};
use bicord_sim::obs::{EventSink, NoopSink, TraceEvent};
use bicord_sim::{stream_rng, Engine, FaultInjector, SeedDomain, SimDuration, SimTime};
use bicord_workloads::priority::TrafficClass;
use bicord_workloads::traffic::{ArrivalProcess, BurstSpec, BurstTrafficGenerator};

use crate::config::{
    AllocationResults, ConfigError, DetectionResults, Mode, NodeResults, RunResults, SimConfig,
    WifiResults, ZigbeeResults,
};
use crate::geometry;
use crate::geometry::Location;
use crate::trace::{ChannelTrace, SpanKind};

/// Device E: the Wi-Fi sender.
pub const WIFI_TX: DeviceId = DeviceId::new(0);
/// Device F: the Wi-Fi receiver (runs the CSI extractor).
pub const WIFI_RX: DeviceId = DeviceId::new(1);
/// The primary ZigBee sender (node 0).
pub const ZIGBEE_TX: DeviceId = DeviceId::new(2);
/// The primary ZigBee receiver (node 0).
pub const ZIGBEE_RX: DeviceId = DeviceId::new(3);
/// The active Bluetooth interferer, when configured.
pub const BLUETOOTH_DEV: DeviceId = DeviceId::new(1_000);
/// The second contending Wi-Fi station, when configured.
pub const EXTRA_WIFI_TX: DeviceId = DeviceId::new(500);

/// Gap below which consecutive ZigBee frames count as one activity span
/// (covers the CSMA backoff, turnaround, IFS and packet interval between
/// the exchanges of one burst).
const ZB_SPAN_MERGE_GAP: SimDuration = SimDuration::from_millis(8);

fn zb_tx_device(node: usize) -> DeviceId {
    DeviceId::new(2 + 2 * node as u32)
}

fn zb_rx_device(node: usize) -> DeviceId {
    DeviceId::new(3 + 2 * node as u32)
}

/// Maps a ZigBee device id back to `(node index, is_sender)`.
fn zb_node_of(device: DeviceId) -> Option<(usize, bool)> {
    let raw = device.raw();
    if raw < 2 {
        return None;
    }
    Some((((raw - 2) / 2) as usize, raw.is_multiple_of(2)))
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum TimerKey {
    Wifi(WifiTimer),
    Wifi2(WifiTimer),
    Zb(u8, ZigbeeTimer),
    ZbRx(u8, ZigbeeTimer),
    Coord(CoordinatorTimer),
    Client(u8, ClientTimer),
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Event {
    Timer(TimerKey),
    TxEnd(TxId),
    ZigbeeBurst { node: u8, n: u32, bytes: usize },
    WifiEnqueue,
    EccReserve,
    TrialStart,
    TrialEnd,
    ChannelClearCheck,
    MobilityStep(usize),
    PriorityBoundary(usize),
    BluetoothSlot,
    FaultChurnStep,
}

impl Event {
    /// Stable label used for [`TraceEvent::Dequeue`] records.
    fn kind_label(&self) -> &'static str {
        match self {
            Event::Timer(_) => "timer",
            Event::TxEnd(_) => "tx_end",
            Event::ZigbeeBurst { .. } => "zigbee_burst",
            Event::WifiEnqueue => "wifi_enqueue",
            Event::EccReserve => "ecc_reserve",
            Event::TrialStart => "trial_start",
            Event::TrialEnd => "trial_end",
            Event::ChannelClearCheck => "channel_clear_check",
            Event::MobilityStep(_) => "mobility_step",
            Event::PriorityBoundary(_) => "priority_boundary",
            Event::BluetoothSlot => "bluetooth_slot",
            Event::FaultChurnStep => "fault_churn_step",
        }
    }
}

/// Reception bookkeeping for one in-flight frame.
#[derive(Debug, Clone, Copy)]
struct RxWatch {
    tx: TxId,
    observer: DeviceId,
    listening: Band,
    /// Linear sum of interfering in-band power accumulated so far.
    interference: MilliWatt,
    /// Strongest single ZigBee in-band power seen (CSI disturbance).
    max_zigbee: Option<MilliWatt>,
    /// Source of that strongest contributor and whether it was a control
    /// frame (fault injection needs the attribution).
    max_zigbee_src: Option<(DeviceId, bool)>,
}

#[derive(Debug, Default)]
struct TrialState {
    active: bool,
    detected_this_trial: bool,
    index: u32,
}

struct UnprotectedDriver {
    pending: VecDeque<(u32, usize)>,
    in_flight: bool,
}

/// One ZigBee sender/receiver pair with its protocol stack.
struct ZbNode {
    mac: ZigbeeMac,
    rx: ZigbeeReceiver,
    client: Option<BicordClient>,
    ecc_client: Option<EccZigbeeClient>,
    unprotected: Option<UnprotectedDriver>,
    tx_dev: DeviceId,
    rx_dev: DeviceId,
    /// Current transmit power for control packets.
    signal_power: Dbm,
    data_power: Dbm,
    burst: BurstSpec,
    seq: u32,
    arrivals: HashMap<u32, SimTime>,
    generated: u64,
    delivered: u64,
    delay: DelayTracker,
}

/// The full coexistence simulation.
///
/// Construct with [`CoexistenceSim::new`] (validated, uninstrumented) or
/// [`CoexistenceSim::with_sink`] (validated, instrumented) and execute
/// with [`CoexistenceSim::run`]; the run is fully determined by the
/// [`SimConfig::seed`].
///
/// The sink type parameter defaults to [`NoopSink`], whose calls compile
/// away — an uninstrumented run pays nothing for the observability
/// layer. Pass `&mut sink` to keep ownership of a real sink across the
/// consuming [`CoexistenceSim::run`]:
///
/// ```no_run
/// use bicord_scenario::config::SimConfig;
/// use bicord_scenario::sim::CoexistenceSim;
/// use bicord_sim::obs::VecSink;
///
/// let config = SimConfig::builder().build().unwrap();
/// let mut sink = VecSink::new();
/// let results = CoexistenceSim::with_sink(config, &mut sink).unwrap().run();
/// assert_eq!(results.wifi.reservations, sink.of_kind("reservation").len() as u64);
/// ```
///
/// The guard type parameter likewise defaults to the zero-sized
/// [`NoopGuard`]; pass a [`bicord_sim::RuntimeGuard`] via
/// [`CoexistenceSim::with_guard`] and execute with
/// [`CoexistenceSim::try_run`] to catch stalls, liveness and
/// conservation violations as structured errors instead of hangs.
pub struct CoexistenceSim<S: EventSink = NoopSink, G: SimGuard = NoopGuard> {
    sink: S,
    guard: G,
    config: SimConfig,
    engine: Engine<Event>,
    medium: Medium,
    wifi: WifiMac,
    wifi2: Option<WifiMac>,
    nodes: Vec<ZbNode>,
    coordinator: Option<BicordCoordinator>,
    ecc_sched: Option<EccWifiScheduler>,
    trial_detector: Option<CsiDetector>,
    trial: TrialState,

    wifi_band: Band,
    zigbee_band: Band,
    wifi_sensed_busy: bool,
    wifi2_sensed_busy: bool,

    timers: HashMap<TimerKey, bicord_sim::event::EventHandle>,
    noise: Vec<NoiseBurst>,
    max_noise_duration: SimDuration,
    csi_model: CsiModel,
    csi_rng: StdRng,
    reception_rng: StdRng,
    trace_rng: StdRng,
    bluetooth_rng: StdRng,
    /// Fault injector; `None` when the profile is fully inactive, so the
    /// default path never even branches on fault state.
    fault: Option<FaultInjector>,

    watches: Vec<RxWatch>,

    /// Scratch buffers reused across hot-path calls so the steady state
    /// allocates nothing per frame. Taken with `mem::take` while in use,
    /// so re-entrant paths (e.g. `begin_tx` → carrier update → `begin_tx`)
    /// simply see an empty fresh vector.
    tx_scratch: Vec<Transmission>,
    wifi_actions_scratch: Vec<WifiAction>,
    zb_actions_scratch: Vec<ZigbeeAction>,

    util: UtilizationTracker,
    delay: DelayTracker,
    throughput: ThroughputTracker,
    pr: PrecisionRecall,
    high_truth: VecDeque<(SimTime, bool)>,
    ws_history: Vec<SimDuration>,
    /// Current merged ZigBee activity span (start, end). The paper counts
    /// "the transmission time of both Wi-Fi and ZigBee devices": for a
    /// ZigBee burst that is the whole exchange footprint (data + ACK +
    /// turnarounds + CSMA + packet intervals), so consecutive frames
    /// separated by less than [`ZB_SPAN_MERGE_GAP`] merge into one span.
    zb_span: Option<(SimTime, SimTime)>,
    wifi_enqueue_times: VecDeque<SimTime>,
    wifi_low_delays: Vec<f64>,
    wifi_frames_received: u64,
    trace: Option<ChannelTrace>,
    end_at: SimTime,
}

impl CoexistenceSim {
    /// Builds the scenario described by `config` without instrumentation.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] for inconsistent configurations (see
    /// [`SimConfig::validate`]).
    pub fn new(config: SimConfig) -> Result<Self, ConfigError> {
        CoexistenceSim::with_sink(config, NoopSink)
    }

    /// Infallible shim for the pre-`Result` constructor.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`SimConfig::validate`].
    #[deprecated(
        since = "0.2.0",
        note = "use CoexistenceSim::new and handle the ConfigError"
    )]
    pub fn new_unchecked(config: SimConfig) -> Self {
        match CoexistenceSim::new(config) {
            Ok(sim) => sim,
            Err(e) => panic!("invalid SimConfig: {e}"),
        }
    }
}

impl<S: EventSink> CoexistenceSim<S> {
    /// Builds the scenario described by `config` with an [`EventSink`]
    /// receiving the run's structured observability records.
    ///
    /// Pass `&mut sink` (any `&mut impl EventSink` is itself a sink) to
    /// retain ownership of the sink after the consuming
    /// [`CoexistenceSim::run`] — required for sinks with an explicit
    /// finish step such as [`bicord_sim::obs::JsonlSink`].
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] for inconsistent configurations (see
    /// [`SimConfig::validate`]).
    pub fn with_sink(config: SimConfig, sink: S) -> Result<Self, ConfigError> {
        CoexistenceSim::with_guard(config, sink, NoopGuard)
    }
}

impl<S: EventSink, G: SimGuard> CoexistenceSim<S, G> {
    /// Builds the scenario with both an [`EventSink`] and a
    /// [`SimGuard`] watching runtime invariants (see
    /// [`bicord_sim::guard`]).
    ///
    /// Pass `&mut guard` to read [`bicord_sim::RuntimeGuard::summary`]
    /// after the consuming [`CoexistenceSim::run`] /
    /// [`CoexistenceSim::try_run`]. The guard draws no randomness, so a
    /// guarded run produces bit-identical results to an unguarded one.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] for inconsistent configurations (see
    /// [`SimConfig::validate`]).
    pub fn with_guard(config: SimConfig, sink: S, guard: G) -> Result<Self, ConfigError> {
        config.validate()?;
        let seed = config.seed;
        let mut medium = Medium::new(ChannelConfig::default(), seed);
        medium.add_device(WIFI_TX, geometry::wifi_sender_position());
        medium.add_device(WIFI_RX, geometry::wifi_receiver_position());

        let mut engine = Engine::new();
        let end_at = SimTime::ZERO + config.duration;

        // Ambient noise bursts for the whole run.
        let mut noise_rng = stream_rng(seed, SeedDomain::Noise, 0);
        let noise = config
            .noise
            .bursts_in(&mut noise_rng, SimTime::ZERO, end_at);
        let max_noise_duration = noise
            .iter()
            .map(|b| b.duration)
            .fold(SimDuration::ZERO, SimDuration::max);

        // Mode-agnostic components.
        let csi_model = CsiModel::intel5300();
        let mut coordinator = None;
        let mut ecc_sched = None;
        let mut trial_detector = None;
        match &config.mode {
            Mode::Bicord => {
                coordinator = Some(BicordCoordinator::new(
                    CoordinatorConfig {
                        detector: config.detector,
                        allocator: config.allocator,
                        respond_to_requests: true,
                    },
                    csi_model,
                ));
            }
            Mode::Ecc(ecc_config) => {
                ecc_sched = Some(EccWifiScheduler::new(*ecc_config, SimTime::ZERO));
            }
            Mode::Unprotected => {}
            Mode::SignalingTrial { .. } => {
                trial_detector = Some(CsiDetector::new(config.detector, csi_model));
            }
        }

        // Build the node roster: the primary node plus any extra nodes.
        struct NodeSpec {
            location: Location,
            burst: BurstSpec,
            arrivals: ArrivalProcess,
            data_power: Dbm,
            signal_power: Dbm,
        }
        let mut specs = vec![NodeSpec {
            location: config.location,
            burst: config.zigbee.burst,
            arrivals: config.zigbee.arrivals,
            data_power: config.zigbee.data_power,
            signal_power: config.effective_signal_power(),
        }];
        for extra in &config.extra_nodes {
            specs.push(NodeSpec {
                location: extra.location,
                burst: extra.burst,
                arrivals: extra.arrivals,
                data_power: extra.data_power,
                signal_power: extra
                    .signal_power
                    .unwrap_or_else(|| extra.location.paper_signal_power()),
            });
        }

        let mut nodes = Vec::with_capacity(specs.len());
        for (i, spec) in specs.iter().enumerate() {
            let tx_dev = zb_tx_device(i);
            let rx_dev = zb_rx_device(i);
            medium.add_device(tx_dev, spec.location.sender_position());
            medium.add_device(rx_dev, spec.location.receiver_position());

            let mut client = None;
            let mut ecc_client = None;
            let mut unprotected = None;
            match &config.mode {
                Mode::Bicord => {
                    let client_config = ClientConfig {
                        default_signal_power: spec.signal_power,
                        data_power: spec.data_power,
                        ..config.client.clone()
                    };
                    client = Some(BicordClient::new(client_config));
                }
                Mode::Ecc(ecc_config) => {
                    ecc_client = Some(EccZigbeeClient::new(*ecc_config));
                }
                Mode::Unprotected => {
                    unprotected = Some(UnprotectedDriver {
                        pending: VecDeque::new(),
                        in_flight: false,
                    });
                }
                Mode::SignalingTrial { .. } => {}
            }

            nodes.push(ZbNode {
                mac: ZigbeeMac::with_defaults(seed, i as u64),
                rx: ZigbeeReceiver::new(),
                client,
                ecc_client,
                unprotected,
                tx_dev,
                rx_dev,
                signal_power: spec.signal_power,
                data_power: spec.data_power,
                burst: spec.burst,
                seq: 0,
                arrivals: HashMap::new(),
                generated: 0,
                delivered: 0,
                delay: DelayTracker::new(),
            });
        }

        // Workload events.
        match &config.mode {
            Mode::SignalingTrial {
                trial_period,
                trials,
                ..
            } => {
                for i in 0..*trials {
                    let start =
                        SimTime::ZERO + *trial_period * u64::from(i) + SimDuration::from_millis(5);
                    engine.schedule_at(start, Event::TrialStart);
                    engine.schedule_at(
                        start + *trial_period - SimDuration::from_micros(200),
                        Event::TrialEnd,
                    );
                }
            }
            _ => {
                for (i, spec) in specs.iter().enumerate() {
                    let mut traffic_rng = stream_rng(seed, SeedDomain::Traffic, i as u64);
                    let mut generator = BurstTrafficGenerator::new(spec.burst, spec.arrivals);
                    for at in generator.arrivals_until(&mut traffic_rng, end_at) {
                        engine.schedule_at(
                            at,
                            Event::ZigbeeBurst {
                                node: i as u8,
                                n: spec.burst.n_packets,
                                bytes: spec.burst.mpdu_bytes,
                            },
                        );
                    }
                }
            }
        }
        if let Mode::Ecc(ecc_config) = &config.mode {
            engine.schedule_at(SimTime::ZERO + ecc_config.period, Event::EccReserve);
        }
        if let Some(interval) = config.wifi.enqueue_interval {
            engine.schedule_at(SimTime::ZERO + interval, Event::WifiEnqueue);
        }
        if let Some(mobility) = &config.device_mobility {
            for (i, (at, _)) in mobility.samples().enumerate() {
                if at > SimTime::ZERO && at < end_at {
                    engine.schedule_at(at, Event::MobilityStep(i));
                }
            }
        }
        if let Some(priority) = &config.priority {
            for (i, at) in priority.boundaries().into_iter().enumerate() {
                if at < end_at {
                    engine.schedule_at(at.max(SimTime::ZERO), Event::PriorityBoundary(i));
                }
            }
        }
        if let Some(bt) = &config.bluetooth {
            medium.add_device(BLUETOOTH_DEV, bt.position);
            engine.schedule_at(
                SimTime::ZERO + SimDuration::from_micros(625),
                Event::BluetoothSlot,
            );
        }
        let fault = if config.fault.is_active() {
            Some(FaultInjector::from_master_seed(config.fault, seed))
        } else {
            None
        };
        if let Some(period) = config.fault.churn_period {
            engine.schedule_at(SimTime::ZERO + period, Event::FaultChurnStep);
        }
        let wifi2 = config.extra_wifi.map(|w| {
            medium.add_device(EXTRA_WIFI_TX, w.position);
            WifiMac::new(config.wifi.rate, seed, 1)
        });

        let wifi = WifiMac::new(config.wifi.rate, seed, 0);

        Ok(CoexistenceSim {
            sink,
            guard,
            engine,
            medium,
            wifi,
            wifi2,
            nodes,
            coordinator,
            ecc_sched,
            trial_detector,
            trial: TrialState::default(),
            wifi_band: WifiChannel::new(config.wifi_channel)
                .expect("validate() checked the Wi-Fi channel")
                .band(),
            zigbee_band: ZigbeeChannel::new(config.zigbee_channel)
                .expect("validate() checked the ZigBee channel")
                .band(),
            wifi_sensed_busy: false,
            wifi2_sensed_busy: false,
            timers: HashMap::new(),
            noise,
            max_noise_duration,
            csi_model,
            csi_rng: stream_rng(seed, SeedDomain::Csi, 0),
            reception_rng: stream_rng(seed, SeedDomain::Reception, 0),
            trace_rng: stream_rng(seed, SeedDomain::Interferers, 0),
            bluetooth_rng: stream_rng(seed, SeedDomain::Interferers, 1),
            fault,
            watches: Vec::new(),
            tx_scratch: Vec::new(),
            wifi_actions_scratch: Vec::new(),
            zb_actions_scratch: Vec::new(),
            util: UtilizationTracker::new(SimTime::ZERO),
            delay: DelayTracker::new(),
            throughput: ThroughputTracker::new(SimTime::ZERO),
            pr: PrecisionRecall::new(),
            high_truth: VecDeque::new(),
            ws_history: Vec::new(),
            zb_span: None,
            wifi_enqueue_times: VecDeque::new(),
            wifi_low_delays: Vec::new(),
            wifi_frames_received: 0,
            trace: if config.record_trace {
                Some(ChannelTrace::new())
            } else {
                None
            },
            end_at,
            config,
        })
    }

    /// Runs the scenario to completion and returns the measured results.
    ///
    /// # Panics
    ///
    /// Panics if an enabled guard detects a fatal violation (a stall).
    /// With the default [`NoopGuard`] this cannot happen; callers that
    /// want the violation as a value use [`CoexistenceSim::try_run`].
    pub fn run(self) -> RunResults {
        self.try_run()
            .unwrap_or_else(|v| panic!("simulation aborted by runtime guard: {v}"))
    }

    /// Runs the scenario to completion, aborting with a structured
    /// [`GuardViolation`] if an enabled guard detects a stall.
    ///
    /// Non-fatal violations (overdue bursts, conservation mismatches)
    /// are reported through the sink as `guard_*` trace records and the
    /// run continues; only a stall — which would otherwise loop forever
    /// — aborts. The `guard_stall` record is emitted before returning,
    /// so sinks see the abort cause too.
    ///
    /// # Errors
    ///
    /// Returns [`GuardViolation::StallDetected`] when the guard's
    /// same-instant dequeue budget is exhausted.
    pub fn try_run(mut self) -> Result<RunResults, GuardViolation> {
        // Kick the Wi-Fi sender.
        if self.config.wifi.enqueue_interval.is_none() {
            self.wifi
                .set_saturated(Some((self.config.wifi.mpdu_bytes, WifiPriority::Low)));
        }
        let start_actions = self.wifi.on_channel_idle(SimTime::ZERO);
        self.apply_wifi_actions(SimTime::ZERO, start_actions);
        if let Some(w2) = self.wifi2.as_mut() {
            let bytes = self
                .config
                .extra_wifi
                .expect("wifi2 implies extra_wifi config")
                .mpdu_bytes;
            w2.set_saturated(Some((bytes, WifiPriority::Low)));
            let actions = w2.on_channel_idle(SimTime::ZERO);
            self.apply_wifi2_actions(SimTime::ZERO, actions);
        }

        let end = self.end_at;
        while let Some((now, event)) = self.engine.next_event_before(end) {
            self.handle(now, event);
            if self.guard.enabled() {
                if let Some(v) = self.guard.check_stall(now, self.engine.same_time_streak()) {
                    if let GuardViolation::StallDetected { t_us, dequeues } = v {
                        self.sink.emit(&TraceEvent::GuardStall { t_us, dequeues });
                    }
                    return Err(v);
                }
                if let Some(GuardViolation::BurstOverdue {
                    t_us,
                    node,
                    started_us,
                }) = self.guard.check_liveness(now)
                {
                    self.sink.emit(&TraceEvent::GuardLiveness {
                        t_us,
                        node,
                        started_us,
                    });
                }
            }
        }
        Ok(self.finalize())
    }

    // ------------------------------------------------------------------
    // Event dispatch
    // ------------------------------------------------------------------

    fn handle(&mut self, now: SimTime, event: Event) {
        self.sink.emit(&TraceEvent::Dequeue {
            t_us: now.as_micros(),
            kind: event.kind_label(),
        });
        match event {
            Event::Timer(key) => {
                self.timers.remove(&key);
                self.on_timer(now, key);
            }
            Event::TxEnd(tx) => self.on_tx_end(now, tx),
            Event::ZigbeeBurst { node, n, bytes } => {
                self.on_zigbee_burst(now, node as usize, n, bytes)
            }
            Event::WifiEnqueue => self.on_wifi_enqueue(now),
            Event::EccReserve => self.on_ecc_reserve(now),
            Event::TrialStart => self.on_trial_start(now),
            Event::TrialEnd => self.on_trial_end(now),
            Event::ChannelClearCheck => self.on_channel_clear_check(now),
            Event::MobilityStep(i) => self.on_mobility_step(now, i),
            Event::PriorityBoundary(i) => self.on_priority_boundary(now, i),
            Event::BluetoothSlot => self.on_bluetooth_slot(now),
            Event::FaultChurnStep => self.on_fault_churn_step(now),
        }
    }

    fn on_timer(&mut self, now: SimTime, key: TimerKey) {
        match key {
            TimerKey::Wifi(t) => {
                let actions = self.wifi.on_timer(now, t);
                self.apply_wifi_actions(now, actions);
            }
            TimerKey::Wifi2(t) => {
                if let Some(w2) = self.wifi2.as_mut() {
                    let actions = w2.on_timer(now, t);
                    self.apply_wifi2_actions(now, actions);
                }
            }
            TimerKey::Zb(node, ZigbeeTimer::Cca) => {
                // CCA verdict: total in-band energy at this ZigBee sender.
                let node = node as usize;
                let busy = self.zigbee_channel_busy(now, node);
                let mut actions = std::mem::take(&mut self.zb_actions_scratch);
                actions.clear();
                self.nodes[node]
                    .mac
                    .on_cca_result_into(now, busy, &mut actions);
                self.drain_zb_actions(now, node, &mut actions);
                self.zb_actions_scratch = actions;
            }
            TimerKey::Zb(node, t) => {
                let node = node as usize;
                let actions = self.nodes[node].mac.on_timer(now, t);
                self.apply_zb_actions(now, node, actions);
            }
            TimerKey::ZbRx(node, t) => {
                let node = node as usize;
                let actions = self.nodes[node].rx.on_timer(now, t);
                self.apply_zb_rx_actions(now, node, actions);
            }
            TimerKey::Coord(t) => {
                if let Some(coordinator) = self.coordinator.as_mut() {
                    let actions = coordinator.on_timer_obs(now, t, &mut self.sink);
                    self.apply_coord_actions(now, actions);
                }
            }
            TimerKey::Client(node, t) => {
                let node = node as usize;
                match &self.config.mode {
                    Mode::Bicord => {
                        if let Some(client) = self.nodes[node].client.as_mut() {
                            let actions = client.on_timer(now, t);
                            self.apply_client_actions(now, node, actions);
                        }
                    }
                    Mode::Ecc(_) => {
                        if t == ClientTimer::NextPacket {
                            self.ecc_try_send(now, node);
                        }
                    }
                    Mode::Unprotected => {
                        if t == ClientTimer::NextPacket {
                            self.unprotected_send_next(now, node);
                        }
                    }
                    Mode::SignalingTrial { .. } => {}
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Transmissions
    // ------------------------------------------------------------------

    fn begin_tx(
        &mut self,
        source: DeviceId,
        power: Dbm,
        band: Band,
        now: SimTime,
        airtime: SimDuration,
        payload: Payload,
    ) -> TxId {
        let tx = self
            .medium
            .begin_transmission(source, power, band, now, now + airtime, payload);
        self.guard.on_tx_begin();
        self.engine.schedule_at(now + airtime, Event::TxEnd(tx));

        // Contribute to existing reception watches. `RxWatch` is `Copy`,
        // so an index loop avoids materializing a spec list per frame.
        for i in 0..self.watches.len() {
            let w = self.watches[i];
            if w.tx == tx || w.observer == source || self.medium.transmission(w.tx).is_none() {
                continue;
            }
            let p = self
                .medium
                .received_power_in_band(tx, w.observer, &w.listening);
            let watch = &mut self.watches[i];
            watch.interference += p;
            if payload.is_zigbee() && p.value() > 0.0 {
                let keep = matches!(watch.max_zigbee, Some(prev) if prev.value() >= p.value());
                if !keep {
                    watch.max_zigbee = Some(p);
                    watch.max_zigbee_src = Some((
                        source,
                        matches!(payload, Payload::Zigbee(ZigbeeFrameKind::Control { .. })),
                    ));
                }
            }
        }

        // Open a watch for frames that need a reception (or CSI) decision.
        let watch_wanted = match payload {
            Payload::Wifi(WifiFrameKind::Data { .. }) => Some((WIFI_RX, self.wifi_band)),
            Payload::Zigbee(ZigbeeFrameKind::Data { .. }) => {
                zb_node_of(source).map(|(node, _)| (self.nodes[node].rx_dev, self.zigbee_band))
            }
            Payload::Zigbee(ZigbeeFrameKind::Ack { .. }) => {
                zb_node_of(source).map(|(node, _)| (self.nodes[node].tx_dev, self.zigbee_band))
            }
            _ => None,
        };
        if let Some((observer, listening)) = watch_wanted {
            // Snapshot into the reusable scratch (Transmission is Copy)
            // so the queries can borrow the medium mutably, then sort by
            // id: the slab iterates in arbitrary order, and both the lazy
            // fading draws and the f64 sum below must evaluate in
            // ascending-TxId order to stay bit-identical run to run.
            let mut others = std::mem::take(&mut self.tx_scratch);
            others.clear();
            others.extend(
                self.medium
                    .active_transmissions()
                    .filter(|t| t.id != tx && t.source != observer)
                    .copied(),
            );
            others.sort_unstable_by_key(|t| t.id);
            let mut interference = MilliWatt::ZERO;
            let mut max_zigbee: Option<MilliWatt> = None;
            let mut max_zigbee_src: Option<(DeviceId, bool)> = None;
            for t in &others {
                let p = self
                    .medium
                    .received_power_in_band(t.id, observer, &listening);
                interference += p;
                if t.payload.is_zigbee() && p.value() > 0.0 {
                    let keep = matches!(max_zigbee, Some(prev) if prev.value() >= p.value());
                    if !keep {
                        max_zigbee = Some(p);
                        max_zigbee_src = Some((
                            t.source,
                            matches!(t.payload, Payload::Zigbee(ZigbeeFrameKind::Control { .. })),
                        ));
                    }
                }
            }
            self.tx_scratch = others;
            self.watches.push(RxWatch {
                tx,
                observer,
                listening,
                interference,
                max_zigbee,
                max_zigbee_src,
            });
        }

        if payload.is_zigbee() || payload.is_wifi() || payload == Payload::Noise {
            self.update_wifi_carrier(now);
            self.update_wifi2_carrier(now);
        }
        if source == WIFI_TX {
            // Every ZigBee node hears the Wi-Fi device resume: any white
            // space it believed in is over.
            for node in 0..self.nodes.len() {
                let actions = match self.nodes[node].client.as_mut() {
                    Some(client) => client.on_channel_busy(now),
                    None => Vec::new(),
                };
                if !actions.is_empty() {
                    self.apply_client_actions(now, node, actions);
                }
            }
        }
        tx
    }

    fn take_watch(&mut self, tx: TxId) -> Option<RxWatch> {
        let idx = self.watches.iter().position(|w| w.tx == tx)?;
        Some(self.watches.swap_remove(idx))
    }

    fn on_tx_end(&mut self, now: SimTime, tx_id: TxId) {
        if self.guard.enabled() {
            // Checked at entry: every path below ends exactly this one
            // transmission, so the slab should still hold everything the
            // guard counted as begun-but-not-ended.
            let active = self.medium.active_count() as u64;
            if let Some(GuardViolation::ConservationBroken {
                t_us,
                invariant,
                expected,
                actual,
            }) = self.guard.check_tx_end(now, active)
            {
                self.sink.emit(&TraceEvent::GuardConservation {
                    t_us,
                    invariant,
                    expected,
                    actual,
                });
            }
        }
        let tx = *self
            .medium
            .transmission(tx_id)
            .expect("TxEnd for unknown transmission");
        let airtime = tx.end - tx.start;
        let watch = self.take_watch(tx_id);

        if let Some(trace) = self.trace.as_mut() {
            let kind = match tx.payload {
                Payload::Wifi(WifiFrameKind::Data { .. }) => Some(SpanKind::WifiData),
                Payload::Wifi(WifiFrameKind::Cts { nav }) => {
                    trace.record(tx.end, tx.end + nav, SpanKind::WhiteSpace);
                    Some(SpanKind::WifiCts)
                }
                Payload::Zigbee(k) => zb_node_of(tx.source).map(|(node, _)| match k {
                    ZigbeeFrameKind::Control { .. } => SpanKind::ZigbeeControl { node },
                    _ => SpanKind::ZigbeeData { node },
                }),
                Payload::Noise => None,
            };
            if let Some(kind) = kind {
                trace.record(tx.start, tx.end, kind);
            }
        }

        match tx.payload {
            Payload::Wifi(kind) => {
                match kind {
                    WifiFrameKind::Data { mpdu_bytes, .. } => {
                        self.util.add(Occupant::WifiData, airtime);
                        self.handle_wifi_frame_received(now, &tx, mpdu_bytes, watch);
                    }
                    WifiFrameKind::Cts { nav } => {
                        self.util.add(Occupant::WifiCts, airtime);
                        self.sink.emit(&TraceEvent::WhiteSpace {
                            t_us: tx.end.as_micros(),
                            nav_us: nav.as_micros(),
                        });
                        // Surrounding Wi-Fi stations decode the CTS and set
                        // their NAV — the mechanism that actually protects
                        // the white space. A lost CTS leaves contenders
                        // unaware of the reservation: the "protected" white
                        // space still sees Wi-Fi contention.
                        let cts_lost = self.fault.as_mut().map(|f| f.drop_cts()).unwrap_or(false);
                        if cts_lost {
                            self.sink.emit(&TraceEvent::FaultCtsLost {
                                t_us: now.as_micros(),
                                nav_us: nav.as_micros(),
                            });
                        } else if let Some(w2) = self.wifi2.as_mut() {
                            let actions = w2.set_nav(now, now + nav);
                            self.apply_wifi2_actions(now, actions);
                        }
                        self.on_white_space_begin(now, nav);
                    }
                }
                self.medium.end_transmission(tx_id);
                if tx.source == EXTRA_WIFI_TX {
                    let (_, actions) = self
                        .wifi2
                        .as_mut()
                        .expect("frame from wifi2 implies wifi2 exists")
                        .on_tx_end(now);
                    self.apply_wifi2_actions(now, actions);
                } else {
                    let (_, actions) = self.wifi.on_tx_end(now);
                    self.apply_wifi_actions(now, actions);
                }
                self.update_wifi_carrier(now);
                self.update_wifi2_carrier(now);
            }
            Payload::Zigbee(kind) => {
                let (node, is_sender) =
                    zb_node_of(tx.source).expect("zigbee frame from unknown device");
                if is_sender {
                    match kind {
                        ZigbeeFrameKind::Data { mpdu_bytes, seq } => {
                            self.note_zigbee_activity(tx.start, tx.end);
                            let ok = self.decide_reception(
                                &tx,
                                watch,
                                &PrrModel::zigbee(),
                                mpdu_bytes,
                                ZIGBEE_NOISE_FLOOR,
                            );
                            if ok {
                                let actions = self.nodes[node].rx.on_data_received(now, seq);
                                self.apply_zb_rx_actions(now, node, actions);
                            }
                        }
                        ZigbeeFrameKind::Control { .. } => {
                            self.util.add(Occupant::ZigbeeControl, airtime);
                        }
                        ZigbeeFrameKind::Ack { .. } => {
                            unreachable!("ZigBee senders do not emit ACKs")
                        }
                    }
                    self.medium.end_transmission(tx_id);
                    let (_, actions) = self.nodes[node].mac.on_tx_end(now);
                    self.apply_zb_actions(now, node, actions);
                    self.update_wifi_carrier(now);
                    self.update_wifi2_carrier(now);
                } else {
                    // A ZigBee receiver's ACK.
                    self.note_zigbee_activity(tx.start, tx.end);
                    let seq = match kind {
                        ZigbeeFrameKind::Ack { seq } => seq,
                        other => unreachable!("unexpected receiver frame {other:?}"),
                    };
                    let ok = self.decide_reception(
                        &tx,
                        watch,
                        &PrrModel::zigbee(),
                        bicord_mac::zigbee::ACK_MPDU_BYTES,
                        ZIGBEE_NOISE_FLOOR,
                    );
                    self.medium.end_transmission(tx_id);
                    self.nodes[node].rx.on_tx_end(now);
                    if ok {
                        let actions = self.nodes[node].mac.on_ack_received(now, seq);
                        self.apply_zb_actions(now, node, actions);
                    }
                    self.update_wifi_carrier(now);
                    self.update_wifi2_carrier(now);
                }
            }
            Payload::Noise => {
                // A Bluetooth slot (or other non-decodable interferer):
                // occupies the medium, carries nothing.
                self.medium.end_transmission(tx_id);
                self.update_wifi_carrier(now);
                self.update_wifi2_carrier(now);
            }
        }
    }

    /// Merges a ZigBee frame into the running activity span (the paper's
    /// "transmission time" of a device covers the whole burst footprint).
    fn note_zigbee_activity(&mut self, start: SimTime, end: SimTime) {
        match self.zb_span {
            Some((s, e)) if start.saturating_since(e) <= ZB_SPAN_MERGE_GAP => {
                self.zb_span = Some((s, e.max(end)));
            }
            Some((s, e)) => {
                self.util.add(Occupant::ZigbeeData, e - s);
                self.zb_span = Some((start, end));
            }
            None => self.zb_span = Some((start, end)),
        }
    }

    /// SINR-based reception decision for a finished frame.
    fn decide_reception(
        &mut self,
        tx: &Transmission,
        watch: Option<RxWatch>,
        model: &PrrModel,
        len_bytes: usize,
        floor: Dbm,
    ) -> bool {
        let watch = watch.expect("reception decision requires a watch");
        let signal = self.medium.received_power(tx.id, watch.observer);
        let noise_burst = self.noise_power_during(tx.start, tx.end);
        let denominator = watch.interference + noise_burst + floor.to_milliwatt();
        let sinr = signal.db_above(denominator.to_dbm());
        model.receive(&mut self.reception_rng, sinr, len_bytes)
    }

    /// CSI generation + detector feeding for one received Wi-Fi frame.
    fn handle_wifi_frame_received(
        &mut self,
        now: SimTime,
        tx: &Transmission,
        mpdu_bytes: usize,
        watch: Option<RxWatch>,
    ) {
        let watch = watch.expect("wifi data frames always carry a watch");
        // Frame reception at F (the paper's 1-6 % PRR effect under
        // signaling shows up here).
        let signal = self.medium.received_power(tx.id, WIFI_RX);
        let noise_burst = self.noise_power_during(tx.start, tx.end);
        let denominator = watch.interference + noise_burst + WIFI_NOISE_FLOOR.to_milliwatt();
        let sinr = signal.db_above(denominator.to_dbm());
        let received = PrrModel::wifi().receive(&mut self.reception_rng, sinr, mpdu_bytes);
        if !received {
            return; // no CSI reading without a decoded frame
        }
        self.wifi_frames_received += 1;

        // The CSI extractor needs a consumer.
        if self.coordinator.is_none() && self.trial_detector.is_none() {
            return;
        }

        // Control-packet loss: the strongest ZigBee contributor was a
        // control frame, but its CSI signature is suppressed, so the
        // classifier misses the continuity sample it should have produced.
        let mut max_zigbee = watch.max_zigbee;
        if max_zigbee.is_some() {
            let is_control = watch.max_zigbee_src.is_some_and(|(_, ctrl)| ctrl);
            if is_control {
                let lost = self
                    .fault
                    .as_mut()
                    .map(|f| f.drop_control())
                    .unwrap_or(false);
                if lost {
                    let node = watch
                        .max_zigbee_src
                        .and_then(|(dev, _)| zb_node_of(dev))
                        .map(|(node, _)| node as u32)
                        .unwrap_or(0);
                    self.sink.emit(&TraceEvent::FaultControlLost {
                        t_us: now.as_micros(),
                        node,
                    });
                    max_zigbee = None;
                }
            }
        }

        let (mut disturbance, mut zigbee_truth) = if let Some(max_z) = max_zigbee {
            let sir = max_z.to_dbm().db_above(signal);
            (Disturbance::Zigbee { sir_db: sir }, true)
        } else if let Some(noise_dbm) = self.strongest_noise_during(tx.start, tx.end) {
            let sir = noise_dbm.db_above(signal);
            (Disturbance::NoiseBurst { sir_db: sir }, false)
        } else {
            let severity = self
                .config
                .person
                .as_ref()
                .map(|p| p.severity_at(now))
                .unwrap_or(0.0);
            if severity > 0.0 {
                (Disturbance::Human { severity }, false)
            } else {
                (Disturbance::None, false)
            }
        };

        // CSI false positive: a quiet sample is classified as ZigBee-like
        // anyway (a phantom channel request; `zigbee_truth` stays false so
        // detection metrics count it against precision).
        if matches!(disturbance, Disturbance::None) {
            let phantom = self
                .fault
                .as_mut()
                .map(|f| f.phantom_csi())
                .unwrap_or(false);
            if phantom {
                self.sink.emit(&TraceEvent::FaultPhantomCsi {
                    t_us: now.as_micros(),
                });
                disturbance = Disturbance::Zigbee { sir_db: 0.0 };
                zigbee_truth = false;
            }
        }

        let sample = self.csi_model.sample(&mut self.csi_rng, now, disturbance);
        if sample.deviation >= self.csi_model.classify_threshold() {
            self.high_truth.push_back((now, zigbee_truth));
            while let Some(&(t, _)) = self.high_truth.front() {
                if now.saturating_since(t) > SimDuration::from_millis(20) {
                    self.high_truth.pop_front();
                } else {
                    break;
                }
            }
        }

        if let Some(coordinator) = self.coordinator.as_mut() {
            let actions = coordinator.on_csi_sample_obs(sample, &mut self.sink);
            self.apply_coord_actions(now, actions);
        } else if let Some(detector) = self.trial_detector.as_mut() {
            if let Some(detection) = detector.push_obs(sample, &mut self.sink) {
                let zigbee_caused = self
                    .high_truth
                    .iter()
                    .any(|&(t, z)| z && t >= detection.window_start && t <= detection.at);
                if zigbee_caused {
                    if self.trial.active && !self.trial.detected_this_trial {
                        self.trial.detected_this_trial = true;
                    }
                } else {
                    self.pr.false_positive();
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Carrier sense
    // ------------------------------------------------------------------

    /// Recomputes the Wi-Fi sender's carrier sense and notifies its MAC on
    /// transitions (the CCA side-effect of ZigBee signaling).
    fn update_wifi_carrier(&mut self, now: SimTime) {
        let sensed = self
            .medium
            .sensed_power(WIFI_TX, &self.wifi_band, now, None);
        let busy = sensed.to_dbm() >= self.config.wifi.ed_threshold;
        if busy == self.wifi_sensed_busy {
            return;
        }
        self.wifi_sensed_busy = busy;
        let mut actions = std::mem::take(&mut self.wifi_actions_scratch);
        actions.clear();
        if busy {
            self.wifi.on_channel_busy_into(now, &mut actions);
        } else {
            self.wifi.on_channel_idle_into(now, &mut actions);
        }
        self.drain_wifi_actions(now, &mut actions);
        self.wifi_actions_scratch = actions;
    }

    /// Recomputes the second Wi-Fi station's carrier sense (it hears the
    /// primary sender, ZigBee, and Bluetooth alike).
    fn update_wifi2_carrier(&mut self, now: SimTime) {
        if self.wifi2.is_none() {
            return;
        }
        let sensed = self
            .medium
            .sensed_power(EXTRA_WIFI_TX, &self.wifi_band, now, None);
        let busy = sensed.to_dbm() >= self.config.wifi.ed_threshold;
        if busy == self.wifi2_sensed_busy {
            return;
        }
        self.wifi2_sensed_busy = busy;
        let mut actions = std::mem::take(&mut self.wifi_actions_scratch);
        actions.clear();
        {
            let w2 = self.wifi2.as_mut().expect("checked above");
            if busy {
                w2.on_channel_busy_into(now, &mut actions);
            } else {
                w2.on_channel_idle_into(now, &mut actions);
            }
        }
        self.drain_wifi2_actions(now, &mut actions);
        self.wifi_actions_scratch = actions;
    }

    /// A ZigBee sender's wideband CCA verdict (it senses Wi-Fi, noise, and
    /// the *other* ZigBee nodes).
    fn zigbee_channel_busy(&mut self, now: SimTime, node: usize) -> bool {
        let device = self.nodes[node].tx_dev;
        let sensed = self
            .medium
            .sensed_power(device, &self.zigbee_band, now, None)
            + self.noise_power_during(now, now + SimDuration::from_micros(1));
        sensed.to_dbm() >= self.config.zigbee.busy_threshold
    }

    // ------------------------------------------------------------------
    // Noise helpers
    // ------------------------------------------------------------------

    fn noise_power_during(&self, from: SimTime, to: SimTime) -> MilliWatt {
        self.noise_bursts_overlapping(from, to)
            .map(|b| b.power.to_milliwatt())
            .sum()
    }

    fn strongest_noise_during(&self, from: SimTime, to: SimTime) -> Option<Dbm> {
        self.noise_bursts_overlapping(from, to)
            .map(|b| b.power)
            .fold(None, |acc, p| match acc {
                Some(prev) if prev >= p => Some(prev),
                _ => Some(p),
            })
    }

    fn noise_bursts_overlapping(
        &self,
        from: SimTime,
        to: SimTime,
    ) -> impl Iterator<Item = &NoiseBurst> {
        // Bursts are sorted by start; only those with
        // start in [from - max_duration, to) can overlap.
        let lo = from.saturating_since(SimTime::ZERO + self.max_noise_duration);
        let lo_time = SimTime::ZERO + lo;
        let begin = self.noise.partition_point(|b| b.start < lo_time);
        self.noise[begin..]
            .iter()
            .take_while(move |b| b.start < to)
            .filter(move |b| b.overlaps(from, to))
    }

    // ------------------------------------------------------------------
    // Workload events
    // ------------------------------------------------------------------

    fn on_zigbee_burst(&mut self, now: SimTime, node: usize, n: u32, bytes: usize) {
        {
            let state = &mut self.nodes[node];
            state.generated += u64::from(n);
            for seq in state.seq..state.seq + n {
                state.arrivals.insert(seq, now);
            }
            state.seq += n;
        }
        match &self.config.mode {
            Mode::Bicord => {
                let actions = match self.nodes[node].client.as_mut() {
                    Some(client) => {
                        // Only client-driven bursts report BurstComplete,
                        // so only those arm the liveness watch.
                        self.guard.on_burst_start(now, node as u32);
                        client.on_burst(now, n, bytes)
                    }
                    None => Vec::new(),
                };
                self.apply_client_actions(now, node, actions);
            }
            Mode::Ecc(_) => {
                if let Some(ecc) = self.nodes[node].ecc_client.as_mut() {
                    ecc.on_burst(now, n, bytes);
                }
            }
            Mode::Unprotected => {
                let state = &mut self.nodes[node];
                if let Some(driver) = state.unprotected.as_mut() {
                    for seq in state.seq - n..state.seq {
                        driver.pending.push_back((seq, bytes));
                    }
                }
                self.unprotected_send_next(now, node);
            }
            Mode::SignalingTrial { .. } => {}
        }
    }

    fn on_wifi_enqueue(&mut self, now: SimTime) {
        let interval = self
            .config
            .wifi
            .enqueue_interval
            .expect("WifiEnqueue without interval");
        let priority = self
            .config
            .priority
            .as_ref()
            .map(|p| match p.class_at(now) {
                TrafficClass::HighPriority => WifiPriority::High,
                TrafficClass::LowPriority => WifiPriority::Low,
            })
            .unwrap_or(WifiPriority::Low);
        self.wifi_enqueue_times.push_back(now);
        let actions = self.wifi.enqueue(
            now,
            WifiFrameSpec {
                mpdu_bytes: self.config.wifi.mpdu_bytes,
                priority,
                enqueued_at: now,
            },
        );
        self.apply_wifi_actions(now, actions);
        if now + interval < self.end_at {
            self.engine.schedule_at(now + interval, Event::WifiEnqueue);
        }
    }

    fn on_ecc_reserve(&mut self, now: SimTime) {
        let Some(sched) = self.ecc_sched.as_mut() else {
            return;
        };
        let (_, ws) = sched.next_reservation();
        let period = sched.config().period;
        // Sec. VIII-G: while serving high-priority traffic the Wi-Fi
        // device does not make space for ZigBee — ECC skips the blind
        // reservation just as BiCord ignores requests.
        let high_priority = self
            .config
            .priority
            .as_ref()
            .map(|p| p.class_at(now) == TrafficClass::HighPriority)
            .unwrap_or(false);
        if !high_priority {
            self.sink.emit(&TraceEvent::Reservation {
                t_us: now.as_micros(),
                ws_us: ws.as_micros(),
            });
            let actions = self.wifi.reserve_channel(now, ws);
            self.apply_wifi_actions(now, actions);
            self.ws_history.push(ws);
        }
        if now + period < self.end_at {
            self.engine.schedule_at(now + period, Event::EccReserve);
        }
    }

    fn on_trial_start(&mut self, now: SimTime) {
        let Mode::SignalingTrial {
            control_packets, ..
        } = self.config.mode
        else {
            return;
        };
        self.trial.active = true;
        self.trial.detected_this_trial = false;
        self.trial.index += 1;
        if let Some(detector) = self.trial_detector.as_mut() {
            detector.reset_window();
        }
        for _ in 0..control_packets {
            let actions = self.nodes[0]
                .mac
                .send_control(now, self.config.client.policy.control_bytes);
            self.apply_zb_actions(now, 0, actions);
        }
    }

    fn on_trial_end(&mut self, now: SimTime) {
        if !self.trial.active {
            return;
        }
        if self.trial.detected_this_trial {
            self.pr.true_positive();
        } else {
            self.pr.false_negative();
        }
        self.sink.emit(&TraceEvent::TrialResolved {
            t_us: now.as_micros(),
            index: self.trial.index,
            detected: self.trial.detected_this_trial,
        });
        self.trial.active = false;
    }

    fn on_channel_clear_check(&mut self, now: SimTime) {
        match &self.config.mode {
            Mode::Bicord => {
                // Each ZigBee node physically senses the quiet channel.
                for node in 0..self.nodes.len() {
                    if self.zigbee_channel_busy(now, node) {
                        continue;
                    }
                    let actions = match self.nodes[node].client.as_mut() {
                        Some(client) => client.on_channel_clear(now),
                        None => Vec::new(),
                    };
                    self.apply_client_actions(now, node, actions);
                }
            }
            Mode::Ecc(_) => {
                for node in 0..self.nodes.len() {
                    self.ecc_try_send(now, node);
                }
            }
            _ => {}
        }
    }

    fn on_white_space_begin(&mut self, now: SimTime, nav: SimDuration) {
        match &self.config.mode {
            Mode::Bicord => {
                // Give the ZigBee nodes a short sensing delay to notice the
                // quiet channel.
                self.engine.schedule_at(
                    now + SimDuration::from_micros(400),
                    Event::ChannelClearCheck,
                );
            }
            Mode::Ecc(_) => {
                let loss = self.ecc_config().notification_loss;
                for node in 0..self.nodes.len() {
                    // The one-way CTC announcement can be lost; that node
                    // never learns about this white space.
                    if loss > 0.0 && bicord_sim::dist::bernoulli(&mut self.reception_rng, loss) {
                        continue;
                    }
                    if let Some(ecc) = self.nodes[node].ecc_client.as_mut() {
                        let _ = ecc.on_white_space(now, nav);
                    }
                }
                self.engine.schedule_at(
                    now + SimDuration::from_micros(400),
                    Event::ChannelClearCheck,
                );
            }
            _ => {}
        }
    }

    fn on_mobility_step(&mut self, now: SimTime, index: usize) {
        let Some(mobility) = self.config.device_mobility.as_ref() else {
            return;
        };
        let position = mobility.position_at(SimTime::ZERO + mobility.step() * index as u64);
        self.medium.set_position(ZIGBEE_TX, position);
        let dropped = self.medium.invalidate_shadowing(ZIGBEE_TX);
        self.sink.emit(&TraceEvent::MediumCacheInvalidated {
            t_us: now.as_micros(),
            device: ZIGBEE_TX.raw(),
            dropped: dropped as u32,
        });
    }

    fn on_priority_boundary(&mut self, now: SimTime, _index: usize) {
        let Some(schedule) = self.config.priority.as_ref() else {
            return;
        };
        let class = schedule.class_at(now);
        if let Some(coordinator) = self.coordinator.as_mut() {
            coordinator.set_respond(class == TrafficClass::LowPriority);
        }
        // In ECC mode, high-priority segments suppress reservations inside
        // on_ecc_reserve (checked there via the schedule).
    }

    fn on_fault_churn_step(&mut self, now: SimTime) {
        let Some(injector) = self.fault.as_mut() else {
            return;
        };
        // Device churn: perturb the primary ZigBee sender's position,
        // invalidating cached link budgets exactly like a mobility step.
        let (dx, dy) = injector.churn_offset();
        let position = self.medium.position(ZIGBEE_TX).offset(dx, dy);
        self.medium.set_position(ZIGBEE_TX, position);
        let dropped = self.medium.invalidate_shadowing(ZIGBEE_TX);
        self.sink.emit(&TraceEvent::FaultChurn {
            t_us: now.as_micros(),
            device: ZIGBEE_TX.raw(),
            dropped: dropped as u32,
        });
        let period = self
            .config
            .fault
            .churn_period
            .expect("churn step implies a churn period");
        let next = now + period;
        if next < self.end_at {
            self.engine.schedule_at(next, Event::FaultChurnStep);
        }
    }

    fn on_bluetooth_slot(&mut self, now: SimTime) {
        let Some(bt) = self.config.bluetooth else {
            return;
        };
        // One 625 us BR/EDR slot: with probability `in_band_prob` the hop
        // lands inside the ZigBee listening band and occupies 366 us of it.
        if bicord_sim::dist::bernoulli(&mut self.bluetooth_rng, bt.in_band_prob) {
            let band = Band::centered(self.zigbee_band.center_mhz(), 1.0);
            self.begin_tx(
                BLUETOOTH_DEV,
                bt.tx_power,
                band,
                now,
                SimDuration::from_micros(366),
                Payload::Noise,
            );
        }
        let next = now + SimDuration::from_micros(625);
        if next < self.end_at {
            self.engine.schedule_at(next, Event::BluetoothSlot);
        }
    }

    // ------------------------------------------------------------------
    // ECC / unprotected drivers
    // ------------------------------------------------------------------

    fn ecc_try_send(&mut self, now: SimTime, node: usize) {
        let action = match self.nodes[node].ecc_client.as_mut() {
            Some(ecc) => ecc.next_action(now),
            None => return,
        };
        match action {
            EccClientAction::SendData { seq, bytes } => {
                if let Some(ecc) = self.nodes[node].ecc_client.as_mut() {
                    ecc.mark_in_flight(seq);
                }
                let actions = self.nodes[node].mac.send_data(now, seq, bytes);
                self.apply_zb_actions(now, node, actions);
            }
            EccClientAction::Wait => {}
        }
    }

    fn unprotected_send_next(&mut self, now: SimTime, node: usize) {
        let (seq, bytes) = {
            let Some(driver) = self.nodes[node].unprotected.as_mut() else {
                return;
            };
            if driver.in_flight {
                return;
            }
            let Some(&(seq, bytes)) = driver.pending.front() else {
                return;
            };
            driver.in_flight = true;
            (seq, bytes)
        };
        let actions = self.nodes[node].mac.send_data(now, seq, bytes);
        self.apply_zb_actions(now, node, actions);
    }

    // ------------------------------------------------------------------
    // Action application
    // ------------------------------------------------------------------

    fn set_timer(&mut self, key: TimerKey, at: SimTime) {
        if let Some(handle) = self.timers.remove(&key) {
            self.engine.cancel(handle);
        }
        let handle = self.engine.schedule_at(at, Event::Timer(key));
        self.timers.insert(key, handle);
    }

    fn cancel_timer(&mut self, key: TimerKey) {
        if let Some(handle) = self.timers.remove(&key) {
            self.engine.cancel(handle);
        }
    }

    fn apply_wifi_actions(&mut self, now: SimTime, mut actions: Vec<WifiAction>) {
        self.drain_wifi_actions(now, &mut actions);
    }

    /// Applies and removes every action in `actions`, leaving the (possibly
    /// grown) buffer behind for reuse. The hot carrier-sense path feeds this
    /// from a scratch buffer so the steady state never allocates.
    fn drain_wifi_actions(&mut self, now: SimTime, actions: &mut Vec<WifiAction>) {
        for action in actions.drain(..) {
            match action {
                WifiAction::StartTx { kind, airtime } => {
                    if let WifiFrameKind::Data { priority, .. } = kind {
                        if self.config.wifi.enqueue_interval.is_some() {
                            if let Some(enqueued) = self.wifi_enqueue_times.pop_front() {
                                if priority == WifiPriority::Low {
                                    self.wifi_low_delays
                                        .push(now.saturating_since(enqueued).as_millis_f64());
                                }
                            }
                        }
                    }
                    self.begin_tx(
                        WIFI_TX,
                        self.config.wifi.tx_power,
                        self.wifi_band,
                        now,
                        airtime,
                        Payload::Wifi(kind),
                    );
                }
                WifiAction::SetTimer { timer, at } => self.set_timer(TimerKey::Wifi(timer), at),
                WifiAction::CancelTimer(timer) => self.cancel_timer(TimerKey::Wifi(timer)),
            }
        }
    }

    fn apply_wifi2_actions(&mut self, now: SimTime, mut actions: Vec<WifiAction>) {
        self.drain_wifi2_actions(now, &mut actions);
    }

    fn drain_wifi2_actions(&mut self, now: SimTime, actions: &mut Vec<WifiAction>) {
        for action in actions.drain(..) {
            match action {
                WifiAction::StartTx { kind, airtime } => {
                    let power = self
                        .config
                        .extra_wifi
                        .expect("wifi2 implies extra_wifi config")
                        .tx_power;
                    self.begin_tx(
                        EXTRA_WIFI_TX,
                        power,
                        self.wifi_band,
                        now,
                        airtime,
                        Payload::Wifi(kind),
                    );
                }
                WifiAction::SetTimer { timer, at } => self.set_timer(TimerKey::Wifi2(timer), at),
                WifiAction::CancelTimer(timer) => self.cancel_timer(TimerKey::Wifi2(timer)),
            }
        }
    }

    fn apply_zb_actions(&mut self, now: SimTime, node: usize, mut actions: Vec<ZigbeeAction>) {
        self.drain_zb_actions(now, node, &mut actions);
    }

    fn drain_zb_actions(&mut self, now: SimTime, node: usize, actions: &mut Vec<ZigbeeAction>) {
        for action in actions.drain(..) {
            match action {
                ZigbeeAction::StartTx { kind, airtime } => {
                    let state = &self.nodes[node];
                    let power = match kind {
                        ZigbeeFrameKind::Control { .. } => state.signal_power,
                        _ => state.data_power,
                    };
                    let source = state.tx_dev;
                    self.begin_tx(
                        source,
                        power,
                        self.zigbee_band,
                        now,
                        airtime,
                        Payload::Zigbee(kind),
                    );
                }
                ZigbeeAction::SetTimer { timer, at } => {
                    self.set_timer(TimerKey::Zb(node as u8, timer), at)
                }
                ZigbeeAction::CancelTimer(timer) => {
                    self.cancel_timer(TimerKey::Zb(node as u8, timer))
                }
                ZigbeeAction::Notify(notification) => {
                    self.on_zb_notification(now, node, notification)
                }
            }
        }
    }

    fn apply_zb_rx_actions(&mut self, now: SimTime, node: usize, actions: Vec<ZigbeeAction>) {
        for action in actions {
            match action {
                ZigbeeAction::StartTx { kind, airtime } => {
                    let source = self.nodes[node].rx_dev;
                    let power = self.nodes[node].data_power;
                    self.begin_tx(
                        source,
                        power,
                        self.zigbee_band,
                        now,
                        airtime,
                        Payload::Zigbee(kind),
                    );
                }
                ZigbeeAction::SetTimer { timer, at } => {
                    self.set_timer(TimerKey::ZbRx(node as u8, timer), at)
                }
                ZigbeeAction::CancelTimer(timer) => {
                    self.cancel_timer(TimerKey::ZbRx(node as u8, timer))
                }
                ZigbeeAction::Notify(_) => {}
            }
        }
    }

    fn record_delivery(&mut self, now: SimTime, node: usize, seq: u32) {
        self.sink.emit(&TraceEvent::PacketDelivered {
            t_us: now.as_micros(),
            node: node as u32,
            seq,
        });
        let bytes = self.nodes[node].burst.mpdu_bytes as u64;
        let state = &mut self.nodes[node];
        state.delivered += 1;
        if let Some(arrived) = state.arrivals.remove(&seq) {
            state.delay.record(arrived, now);
            self.delay.record(arrived, now);
        }
        self.throughput.add_bytes(bytes);
    }

    fn on_zb_notification(
        &mut self,
        now: SimTime,
        node: usize,
        notification: bicord_mac::zigbee::ZigbeeNotification,
    ) {
        use bicord_mac::zigbee::ZigbeeNotification as N;
        match &self.config.mode {
            Mode::Bicord => {
                let actions = match self.nodes[node].client.as_mut() {
                    Some(client) => client.on_mac_notification(now, notification),
                    None => Vec::new(),
                };
                self.apply_client_actions(now, node, actions);
            }
            Mode::Ecc(_) => match notification {
                N::Delivered { seq, .. } => {
                    let _ = self.nodes[node]
                        .ecc_client
                        .as_mut()
                        .expect("ecc client in ecc mode")
                        .on_delivered(now, seq);
                    self.record_delivery(now, node, seq);
                    self.set_timer(
                        TimerKey::Client(node as u8, ClientTimer::NextPacket),
                        now + self.ecc_config().packet_interval,
                    );
                }
                N::Failed { seq, .. } => {
                    // The frame stays in the ECC client's queue; clear the
                    // in-flight mark so it is re-offered at the next
                    // opportunity.
                    if let Some(ecc) = self.nodes[node].ecc_client.as_mut() {
                        ecc.on_failed(seq);
                    }
                    self.set_timer(
                        TimerKey::Client(node as u8, ClientTimer::NextPacket),
                        now + self.ecc_config().packet_interval,
                    );
                }
                N::ControlSent => {}
            },
            Mode::Unprotected => match notification {
                N::Delivered { seq, .. } => {
                    if let Some(driver) = self.nodes[node].unprotected.as_mut() {
                        driver.in_flight = false;
                        driver.pending.pop_front();
                    }
                    self.record_delivery(now, node, seq);
                    self.set_timer(
                        TimerKey::Client(node as u8, ClientTimer::NextPacket),
                        now + self.config.client.packet_interval,
                    );
                }
                N::Failed { .. } => {
                    if let Some(driver) = self.nodes[node].unprotected.as_mut() {
                        driver.in_flight = false;
                        driver.pending.pop_front();
                    }
                    self.nodes[node].delay.record_abandoned();
                    self.delay.record_abandoned();
                    self.set_timer(
                        TimerKey::Client(node as u8, ClientTimer::NextPacket),
                        now + self.config.client.packet_interval,
                    );
                }
                N::ControlSent => {}
            },
            Mode::SignalingTrial { .. } => {}
        }
    }

    fn ecc_config(&self) -> EccConfig {
        match &self.config.mode {
            Mode::Ecc(c) => *c,
            _ => unreachable!("ecc_config outside ECC mode"),
        }
    }

    fn apply_client_actions(&mut self, now: SimTime, node: usize, actions: Vec<ClientAction>) {
        for action in actions {
            match action {
                ClientAction::MacSendData { seq, bytes } => {
                    let zb_actions = self.nodes[node].mac.send_data(now, seq, bytes);
                    self.apply_zb_actions(now, node, zb_actions);
                }
                ClientAction::MacSendControl { bytes } => {
                    self.sink.emit(&TraceEvent::ChannelRequest {
                        t_us: now.as_micros(),
                        node: node as u32,
                    });
                    let zb_actions = self.nodes[node].mac.send_control(now, bytes);
                    self.apply_zb_actions(now, node, zb_actions);
                }
                ClientAction::SetTxPower(power) => {
                    self.nodes[node].signal_power = power;
                }
                ClientAction::CaptureTrace => {
                    // Synthesize the RSSI trace the ZigBee node records: the
                    // dominant interferer at its own link budget. Duty
                    // cycles matter: a saturated Wi-Fi sender at moderate
                    // power out-jams a sparse Bluetooth hopper at high
                    // power.
                    let node_pos = self.medium.position(self.nodes[node].tx_dev);
                    let loss = |p: bicord_phy::geometry::Point| {
                        bicord_phy::pathloss::PathLossModel::office()
                            .path_loss_db(node_pos.distance_to(p))
                    };
                    let wifi_rx =
                        self.config.wifi.tx_power.value() - loss(self.medium.position(WIFI_TX));
                    // Only band-overlapping Wi-Fi matters.
                    let wifi_couples = self.zigbee_band.overlap_fraction(&self.wifi_band) > 0.0;
                    let bt = self
                        .config
                        .bluetooth
                        .map(|bt| (bt.tx_power.value() - loss(bt.position), bt.in_band_prob));
                    // Effective level = received power weighted by duty (in
                    // dB: 10 log10 of the on-air fraction).
                    let wifi_eff = if wifi_couples {
                        wifi_rx - 10.0 * (1.0f64 / 0.9).log10()
                    } else {
                        f64::MIN
                    };
                    let trace_config = match bt {
                        Some((bt_rx, in_band))
                            if bt_rx - 10.0 * (1.0 / (in_band * 0.58)).log10() > wifi_eff =>
                        {
                            TraceConfig::bluetooth(bt_rx)
                        }
                        _ if wifi_couples => TraceConfig::wifi(wifi_rx),
                        _ => {
                            // Nothing dominant: a quiet-channel trace (the
                            // classifier reports no verdict).
                            TraceConfig::bluetooth(-95.0)
                        }
                    };
                    let trace = generate_trace(&mut self.trace_rng, &trace_config, TRACE_DURATION);
                    let actions = match self.nodes[node].client.as_mut() {
                        Some(client) => client.on_trace(now, &trace),
                        None => Vec::new(),
                    };
                    self.apply_client_actions(now, node, actions);
                }
                ClientAction::SetTimer { timer, at } => {
                    self.set_timer(TimerKey::Client(node as u8, timer), at)
                }
                ClientAction::CancelTimer(timer) => {
                    self.cancel_timer(TimerKey::Client(node as u8, timer))
                }
                ClientAction::PacketDelivered { seq, .. } => {
                    self.record_delivery(now, node, seq);
                }
                ClientAction::BurstComplete { delivered, failed } => {
                    self.guard.on_burst_end(node as u32);
                    self.sink.emit(&TraceEvent::BurstComplete {
                        t_us: now.as_micros(),
                        node: node as u32,
                        delivered,
                        failed,
                    });
                }
                ClientAction::SignalingBackoff { failures } => {
                    self.sink.emit(&TraceEvent::SignalingBackoff {
                        t_us: now.as_micros(),
                        node: node as u32,
                        failures,
                    });
                }
                ClientAction::FallbackToCsma { failures } => {
                    self.sink.emit(&TraceEvent::CsmaFallback {
                        t_us: now.as_micros(),
                        node: node as u32,
                        failures,
                    });
                }
            }
        }
    }

    fn apply_coord_actions(&mut self, now: SimTime, actions: Vec<CoordinatorAction>) {
        for action in actions {
            match action {
                CoordinatorAction::Reserve(ws) => {
                    self.ws_history.push(ws);
                    let wifi_actions = self.wifi.reserve_channel(now, ws);
                    self.apply_wifi_actions(now, wifi_actions);
                }
                CoordinatorAction::SetTimer { timer, at } => {
                    self.set_timer(TimerKey::Coord(timer), at)
                }
                CoordinatorAction::CancelTimer(timer) => self.cancel_timer(TimerKey::Coord(timer)),
            }
        }
    }

    // ------------------------------------------------------------------
    // Results
    // ------------------------------------------------------------------

    fn finalize(mut self) -> RunResults {
        let end = self.end_at;
        // Cache efficiency snapshot. Gated on mobility so the default
        // (static-geometry) traces — including the goldens — are
        // byte-identical to pre-cache builds.
        if self.config.device_mobility.is_some() {
            let stats = self.medium.cache_stats();
            self.sink.emit(&TraceEvent::MediumCacheStats {
                t_us: end.as_micros(),
                link_hits: stats.link_hits,
                link_misses: stats.link_misses,
                band_hits: stats.band_hits,
                band_misses: stats.band_misses,
            });
            let grid = self.medium.grid_stats();
            self.sink.emit(&TraceEvent::MediumGridStats {
                t_us: end.as_micros(),
                queries: grid.queries,
                cells: grid.cells_visited,
                visited: grid.tx_visited,
                culled: grid.tx_culled,
                out_of_range: grid.tx_out_of_range,
            });
        }
        if let Some((s, e)) = self.zb_span.take() {
            self.util.add(Occupant::ZigbeeData, e - s);
        }
        self.util.finish(end);
        if self.guard.enabled() {
            // Airtime conservation: the accrued busy time cannot exceed
            // the run window times the number of concurrent occupancy
            // sources (two Wi-Fi MACs + CTS protection, plus data and
            // control per ZigBee node). A violation means double
            // accounting, not congestion.
            let busy_us: u64 = [
                Occupant::WifiData,
                Occupant::WifiCts,
                Occupant::ZigbeeData,
                Occupant::ZigbeeControl,
            ]
            .iter()
            .map(|o| self.util.airtime(*o).as_micros())
            .sum();
            let window_us = end.as_micros();
            let sources = 3 + 2 * self.nodes.len() as u64;
            let capacity_us = window_us.saturating_mul(sources);
            if let Some(GuardViolation::ConservationBroken {
                t_us,
                invariant,
                expected,
                actual,
            }) = self.guard.check_airtime(window_us, busy_us, capacity_us)
            {
                self.sink.emit(&TraceEvent::GuardConservation {
                    t_us,
                    invariant,
                    expected,
                    actual,
                });
            }
        }
        self.throughput.finish(end);

        let (mean_delay, p95_delay, max_delay) = if self.delay.count() > 0 {
            let summary = self.delay.summary_ms();
            (
                Some(summary.mean()),
                Some(summary.percentile(95.0)),
                Some(summary.max()),
            )
        } else {
            (None, None, None)
        };

        let generated: u64 = self.nodes.iter().map(|n| n.generated).sum();
        let delivered: u64 = self.nodes.iter().map(|n| n.delivered).sum();
        let transmissions: u64 = self.nodes.iter().map(|n| n.mac.data_transmissions()).sum();
        let signaling_rounds: u64 = self
            .nodes
            .iter()
            .map(|n| n.client.as_ref().map(|c| c.signaling_rounds()).unwrap_or(0))
            .sum();
        let control_packets: u64 = self
            .nodes
            .iter()
            .map(|n| n.mac.control_transmissions())
            .sum();
        let csma_fallbacks: u64 = self
            .nodes
            .iter()
            .map(|n| n.client.as_ref().map(|c| c.csma_fallbacks()).unwrap_or(0))
            .sum();

        let zigbee = ZigbeeResults {
            generated,
            transmissions,
            delivered,
            undelivered: generated.saturating_sub(delivered),
            mean_delay_ms: mean_delay,
            p95_delay_ms: p95_delay,
            max_delay_ms: max_delay,
            throughput_kbps: self.throughput.kbps(),
            signaling_rounds,
            control_packets,
            csma_fallbacks,
        };

        let per_node: Vec<NodeResults> = self
            .nodes
            .iter()
            .map(|n| NodeResults {
                generated: n.generated,
                delivered: n.delivered,
                signaling_rounds: n.client.as_ref().map(|c| c.signaling_rounds()).unwrap_or(0),
                mean_delay_ms: if n.delay.count() > 0 {
                    Some(n.delay.mean_ms())
                } else {
                    None
                },
            })
            .collect();

        let wifi_mean_delay = if self.wifi_low_delays.is_empty() {
            None
        } else {
            Some(self.wifi_low_delays.iter().sum::<f64>() / self.wifi_low_delays.len() as f64)
        };
        let wifi = WifiResults {
            frames_sent: self.wifi.frames_sent(),
            frames_received: self.wifi_frames_received,
            reservations: self.wifi.cts_sent(),
            mean_delay_ms: wifi_mean_delay,
            ignored_requests: self
                .coordinator
                .as_ref()
                .map(|c| c.ignored_requests())
                .unwrap_or(0),
        };

        let detection = DetectionResults {
            tp: self.pr.tp(),
            fp: self.pr.fp(),
            fn_count: self.pr.fn_count(),
            precision: self.pr.precision(),
            recall: self.pr.recall(),
        };

        let allocation = self
            .coordinator
            .as_ref()
            .map(|c| AllocationResults {
                white_space_history_ms: self.ws_history.iter().map(|d| d.as_millis_f64()).collect(),
                learning_iterations: c.allocator().iterations_to_converge(),
                final_estimate_ms: c.allocator().estimate().as_millis_f64(),
                converged: c.allocator().phase()
                    == bicord_core::allocation::AllocationPhase::Converged,
                learning_aborts: c.allocator().learning_aborts(),
            })
            .unwrap_or_else(|| AllocationResults {
                white_space_history_ms: self.ws_history.iter().map(|d| d.as_millis_f64()).collect(),
                ..AllocationResults::default()
            });

        RunResults {
            utilization: self.util.total_utilization(),
            zigbee_utilization: self.util.zigbee_utilization(),
            wifi_utilization: self.util.wifi_utilization(),
            overhead_fraction: self.util.overhead_fraction(),
            zigbee,
            per_node,
            wifi,
            detection,
            allocation,
            simulated: end - SimTime::ZERO,
            events: self.engine.events_processed(),
            trace: self.trace,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ExtraNodeConfig;
    use crate::geometry::Location;

    fn short(mut config: SimConfig) -> RunResults {
        config.duration = SimDuration::from_secs(3);
        CoexistenceSim::new(config).unwrap().run()
    }

    #[test]
    fn wifi_alone_saturates_the_channel() {
        // No ZigBee traffic at all: utilization ≈ 1 from Wi-Fi.
        let mut config = SimConfig::bicord(Location::A, 11);
        config.zigbee.arrivals =
            bicord_workloads::traffic::ArrivalProcess::Periodic(SimDuration::from_secs(1000));
        let r = short(config);
        assert!(
            r.wifi_utilization > 0.6,
            "wifi utilization {}",
            r.wifi_utilization
        );
        assert!(r.wifi.frames_sent > 1_000);
        assert!(r.zigbee.delivered == 0);
    }

    #[test]
    fn unprotected_zigbee_suffers_heavy_loss() {
        // Sec. VIII-A: over 95 % per-transmission loss when the nearby
        // Wi-Fi sender is active and no coordination exists. Location D is
        // the "near the Wi-Fi sender" regime; -7 dBm is the paper's demo
        // power.
        let mut config = SimConfig::unprotected(Location::D, 12);
        config.zigbee.data_power = bicord_phy::units::Dbm::new(-7.0);
        let r = short(config);
        assert!(r.zigbee.generated > 0);
        assert!(r.zigbee.transmissions > 0);
        let prr = r.zigbee_prr();
        assert!(prr < 0.2, "unprotected per-transmission PRR {prr} too high");
    }

    #[test]
    fn bicord_delivers_the_burst_traffic() {
        let r = short(SimConfig::bicord(Location::A, 13));
        assert!(r.zigbee.generated > 0);
        let pdr = r.zigbee_pdr();
        assert!(pdr > 0.6, "BiCord PDR {pdr} too low");
        assert!(r.zigbee.signaling_rounds > 0, "signaling never happened");
        assert!(r.wifi.reservations > 0, "no white spaces reserved");
        assert!(r.utilization > 0.5, "utilization {}", r.utilization);
        assert_eq!(r.per_node.len(), 1);
        assert_eq!(r.per_node[0].delivered, r.zigbee.delivered);
    }

    #[test]
    fn guarded_run_is_bit_identical_and_clean() {
        use bicord_sim::guard::{GuardConfig, RuntimeGuard};
        use bicord_sim::obs::VecSink;

        let mut config = SimConfig::bicord(Location::A, 13);
        config.duration = SimDuration::from_secs(3);
        let plain = CoexistenceSim::new(config.clone()).unwrap().run();

        let mut sink = VecSink::new();
        let mut guard = RuntimeGuard::new(GuardConfig::default());
        let guarded = CoexistenceSim::with_guard(config, &mut sink, &mut guard)
            .unwrap()
            .try_run()
            .expect("healthy run must not stall");

        // The guard observes without perturbing: results are identical
        // and a healthy run reports no violations.
        assert_eq!(format!("{plain:?}"), format!("{guarded:?}"));
        assert!(!guard.summary().any(), "summary: {}", guard.summary());
        assert!(sink.of_kind("guard_stall").is_empty());
        assert!(sink.of_kind("guard_liveness").is_empty());
        assert!(sink.of_kind("guard_conservation").is_empty());
    }

    #[test]
    fn guard_reports_a_seeded_conservation_mismatch() {
        use bicord_sim::guard::{GuardConfig, RuntimeGuard, SimGuard as _};
        use bicord_sim::obs::VecSink;

        let mut config = SimConfig::bicord(Location::A, 13);
        config.duration = SimDuration::from_secs(1);
        let mut sink = VecSink::new();
        let mut guard = RuntimeGuard::new(GuardConfig::default());
        // Pre-charge the begin counter: the first real TxEnd now sees
        // one more "active" transmission than the medium slab holds.
        guard.on_tx_begin();
        let _ = CoexistenceSim::with_guard(config, &mut sink, &mut guard)
            .unwrap()
            .try_run()
            .expect("conservation mismatches are non-fatal");
        assert!(guard.summary().conservation >= 1);
        let records = sink.of_kind("guard_conservation");
        assert!(!records.is_empty(), "mismatch must reach the sink");
    }

    #[test]
    fn bicord_beats_unprotected_delivery() {
        let b = short(SimConfig::bicord(Location::A, 14));
        let u = short(SimConfig::unprotected(Location::A, 14));
        assert!(b.zigbee_pdr() > u.zigbee_pdr() + 0.3);
    }

    #[test]
    fn ecc_reserves_periodically_and_delivers() {
        let r = short(SimConfig::ecc(
            Location::A,
            15,
            SimDuration::from_millis(30),
        ));
        // ~10 reservations per second.
        assert!(
            (20..=35).contains(&(r.wifi.reservations as usize)),
            "reservations {}",
            r.wifi.reservations
        );
        assert!(r.zigbee_pdr() > 0.5, "ECC PDR {}", r.zigbee_pdr());
    }

    #[test]
    fn bicord_delay_beats_ecc() {
        let mut bc = SimConfig::bicord(Location::A, 16);
        bc.zigbee.arrivals =
            bicord_workloads::traffic::ArrivalProcess::Poisson(SimDuration::from_millis(400));
        let mut ecc = SimConfig::ecc(Location::A, 16, SimDuration::from_millis(20));
        ecc.zigbee.arrivals =
            bicord_workloads::traffic::ArrivalProcess::Poisson(SimDuration::from_millis(400));
        let b = short(bc);
        let e = short(ecc);
        let (bd, ed) = (
            b.zigbee.mean_delay_ms.expect("bicord delivered"),
            e.zigbee.mean_delay_ms.expect("ecc delivered"),
        );
        assert!(bd < ed, "BiCord delay {bd} ms !< ECC delay {ed} ms");
    }

    #[test]
    fn signaling_trial_produces_detection_stats() {
        let config = SimConfig::signaling_trial(Location::A, 17, 4, 60, Dbm::new(0.0));
        let r = CoexistenceSim::new(config).unwrap().run();
        let total = r.detection.tp + r.detection.fn_count;
        assert_eq!(total, 60, "every trial must resolve");
        assert!(
            r.detection.recall > 0.5,
            "recall {} at the best location",
            r.detection.recall
        );
        assert!(r.detection.precision > 0.5);
    }

    #[test]
    fn weak_location_detects_worse_than_strong() {
        let strong = CoexistenceSim::new(SimConfig::signaling_trial(
            Location::A,
            18,
            4,
            60,
            Dbm::new(0.0),
        ))
        .unwrap()
        .run();
        let weak = CoexistenceSim::new(SimConfig::signaling_trial(
            Location::B,
            18,
            4,
            60,
            Dbm::new(-3.0),
        ))
        .unwrap()
        .run();
        assert!(
            strong.detection.recall >= weak.detection.recall,
            "A recall {} < B@-3 recall {}",
            strong.detection.recall,
            weak.detection.recall
        );
    }

    #[test]
    fn runs_are_deterministic_per_seed() {
        let run = |seed| {
            let mut c = SimConfig::bicord(Location::A, seed);
            c.duration = SimDuration::from_secs(2);
            CoexistenceSim::new(c).unwrap().run()
        };
        let a = run(99);
        let b = run(99);
        assert_eq!(a.zigbee.delivered, b.zigbee.delivered);
        assert_eq!(a.wifi.frames_sent, b.wifi.frames_sent);
        assert_eq!(a.events, b.events);
        let c = run(100);
        assert!(a.events != c.events || a.zigbee.delivered != c.zigbee.delivered);
    }

    #[test]
    fn lost_ecc_notifications_raise_delay() {
        use bicord_ctc::ecc::EccConfig;
        let base = {
            let mut c = SimConfig::ecc(Location::A, 58, SimDuration::from_millis(30));
            c.duration = SimDuration::from_secs(5);
            CoexistenceSim::new(c).unwrap().run()
        };
        let lossy = {
            let mut c = SimConfig::bicord(Location::A, 58);
            c.mode = Mode::Ecc(EccConfig {
                notification_loss: 0.5,
                ..EccConfig::with_white_space(SimDuration::from_millis(30))
            });
            c.duration = SimDuration::from_secs(5);
            CoexistenceSim::new(c).unwrap().run()
        };
        let (bd, ld) = (
            base.zigbee.mean_delay_ms.expect("base delivered"),
            lossy.zigbee.mean_delay_ms.expect("lossy delivered"),
        );
        assert!(
            ld > bd * 1.3,
            "50% notification loss should raise delay: {bd} -> {ld} ms"
        );
    }

    #[test]
    fn two_nodes_both_get_served() {
        let mut config = SimConfig::bicord(Location::A, 50);
        config.extra_nodes.push(ExtraNodeConfig::at(Location::C));
        config.duration = SimDuration::from_secs(4);
        let r = CoexistenceSim::new(config).unwrap().run();
        assert_eq!(r.per_node.len(), 2);
        for (i, node) in r.per_node.iter().enumerate() {
            assert!(node.generated > 0, "node {i} generated nothing");
            let pdr = node.delivered as f64 / node.generated as f64;
            assert!(pdr > 0.4, "node {i} PDR {pdr}");
        }
        // Aggregates are sums of the per-node numbers.
        assert_eq!(
            r.zigbee.delivered,
            r.per_node.iter().map(|n| n.delivered).sum::<u64>()
        );
    }

    #[test]
    fn heterogeneous_nodes_force_reestimation() {
        // Node 0 sends short bursts, node 1 long ones: the single shared
        // estimate must keep adjusting (Sec. VI's "multiple ZigBee nodes
        // with different traffic pattern").
        let mut config = SimConfig::bicord(Location::A, 51);
        config.zigbee.burst = BurstSpec {
            n_packets: 3,
            mpdu_bytes: 50,
        };
        let mut extra = ExtraNodeConfig::at(Location::C);
        extra.burst = BurstSpec {
            n_packets: 12,
            mpdu_bytes: 50,
        };
        config.extra_nodes.push(extra);
        config.duration = SimDuration::from_secs(6);
        let r = CoexistenceSim::new(config).unwrap().run();
        assert!(r.per_node[0].delivered > 0);
        assert!(r.per_node[1].delivered > 0);
        // The white-space history must show materially different lengths.
        let hist = &r.allocation.white_space_history_ms;
        let min = hist.iter().cloned().fold(f64::MAX, f64::min);
        let max = hist.iter().cloned().fold(f64::MIN, f64::max);
        assert!(
            max > min + 15.0,
            "white spaces never adapted: min {min}, max {max}"
        );
    }

    #[test]
    fn disjoint_channels_remove_the_interference() {
        // Wi-Fi channel 1 (2402-2422) and ZigBee channel 26 (2480): no
        // spectral overlap, so even "unprotected" ZigBee sails through and
        // BiCord never needs to signal.
        let mut config = SimConfig::unprotected(Location::D, 53);
        config.wifi_channel = 1;
        config.zigbee_channel = 26;
        config.duration = SimDuration::from_secs(3);
        let r = CoexistenceSim::new(config).unwrap().run();
        assert!(
            r.zigbee_prr() > 0.9,
            "disjoint channels: PRR {}",
            r.zigbee_prr()
        );

        let mut config = SimConfig::bicord(Location::D, 53);
        config.wifi_channel = 1;
        config.zigbee_channel = 26;
        config.duration = SimDuration::from_secs(3);
        let r = CoexistenceSim::new(config).unwrap().run();
        assert_eq!(
            r.zigbee.signaling_rounds, 0,
            "no interference, no reason to signal"
        );
        assert!(r.zigbee_pdr() > 0.9);
    }

    #[test]
    fn alternate_paper_channel_pair_works() {
        // The paper's other pair: Wi-Fi 13 / ZigBee 26 (also overlapping).
        let mut config = SimConfig::bicord(Location::A, 54);
        config.wifi_channel = 13;
        config.zigbee_channel = 26;
        config.duration = SimDuration::from_secs(3);
        let r = CoexistenceSim::new(config).unwrap().run();
        assert!(r.zigbee.signaling_rounds > 0, "signaling must happen");
        assert!(r.zigbee_pdr() > 0.6, "PDR {}", r.zigbee_pdr());
    }

    #[test]
    fn two_wifi_stations_share_the_channel() {
        let mut config = SimConfig::bicord(Location::A, 60);
        config.zigbee.arrivals =
            bicord_workloads::traffic::ArrivalProcess::Periodic(SimDuration::from_secs(1000));
        config.extra_wifi = Some(crate::config::ExtraWifiConfig::default());
        config.duration = SimDuration::from_secs(3);
        let r = CoexistenceSim::new(config).unwrap().run();
        // Both stations transmit; DCF carrier sense keeps them mostly
        // collision-free, so the received-frame count stays high.
        assert!(
            r.wifi.frames_sent > 500,
            "primary sent {}",
            r.wifi.frames_sent
        );
        assert!(
            r.wifi.frames_received as f64 / r.wifi.frames_sent as f64 > 0.2,
            "primary frames drowned by the contender"
        );
        assert!(r.utilization > 0.7, "utilization {}", r.utilization);
    }

    #[test]
    fn contending_station_honours_the_nav() {
        // The paper's CTS-to-self only works if *other* stations stay
        // silent during the white space. With the contender present,
        // BiCord's ZigBee bursts must still be protected.
        let mut config = SimConfig::bicord(Location::A, 61);
        config.extra_wifi = Some(crate::config::ExtraWifiConfig::default());
        config.duration = SimDuration::from_secs(4);
        let r = CoexistenceSim::new(config).unwrap().run();
        assert!(r.wifi.reservations > 0, "no white spaces reserved");
        assert!(
            r.zigbee_pdr() > 0.6,
            "NAV not honoured: PDR {} with a contender present",
            r.zigbee_pdr()
        );
        assert!(
            r.zigbee.mean_delay_ms.unwrap_or(f64::MAX) < 100.0,
            "delay exploded with a contender"
        );
    }

    #[test]
    fn bluetooth_interference_does_not_trigger_signaling() {
        // Sec. VII-A: "If the detected channel activity is not coming from
        // a nearby Wi-Fi device ... the ZigBee node does not perform
        // cross-technology signaling." Remove the Wi-Fi sender from the
        // band (disjoint channel) and jam with Bluetooth near the node.
        let mut config = SimConfig::bicord(Location::A, 56);
        config.wifi_channel = 1; // out of the ZigBee band
        config.bluetooth = Some(crate::config::BluetoothConfig {
            position: Location::A.sender_position().offset(0.5, 0.3),
            ..crate::config::BluetoothConfig::default()
        });
        config.duration = SimDuration::from_secs(4);
        let r = CoexistenceSim::new(config).unwrap().run();
        assert_eq!(
            r.zigbee.signaling_rounds, 0,
            "must not signal at a Bluetooth interferer"
        );
        // CSMA + retries still get most packets through the 18 %-duty
        // hopper.
        assert!(r.zigbee_pdr() > 0.5, "PDR {}", r.zigbee_pdr());
    }

    #[test]
    fn bluetooth_plus_wifi_still_signals_at_wifi() {
        // With both interferers active, Wi-Fi dominates (saturated duty)
        // and signaling proceeds as usual.
        let mut config = SimConfig::bicord(Location::A, 57);
        config.bluetooth = Some(crate::config::BluetoothConfig::default());
        config.duration = SimDuration::from_secs(3);
        let r = CoexistenceSim::new(config).unwrap().run();
        assert!(
            r.zigbee.signaling_rounds > 0,
            "Wi-Fi is the dominant jammer"
        );
        assert!(r.zigbee_pdr() > 0.5, "PDR {}", r.zigbee_pdr());
    }

    #[test]
    fn trace_recording_captures_the_coordination() {
        let mut config = SimConfig::bicord(Location::A, 55);
        config.duration = SimDuration::from_secs(2);
        config.record_trace = true;
        let r = CoexistenceSim::new(config).unwrap().run();
        let trace = r.trace.as_ref().expect("trace was requested");
        use crate::trace::SpanKind as K;
        let kinds: Vec<bool> = vec![
            trace.spans().iter().any(|s| s.kind == K::WifiData),
            trace.spans().iter().any(|s| s.kind == K::WifiCts),
            trace.spans().iter().any(|s| s.kind == K::WhiteSpace),
            trace
                .spans()
                .iter()
                .any(|s| matches!(s.kind, K::ZigbeeData { .. })),
            trace
                .spans()
                .iter()
                .any(|s| matches!(s.kind, K::ZigbeeControl { .. })),
        ];
        assert!(kinds.iter().all(|&k| k), "missing span kinds: {kinds:?}");
        // Rendering the first 200 ms produces the four lanes.
        let art = trace.render(SimTime::ZERO, SimTime::from_millis(200), 80);
        assert_eq!(art.lines().count(), 5);
        // Without the flag, no trace comes back.
        let mut config = SimConfig::bicord(Location::A, 55);
        config.duration = SimDuration::from_secs(1);
        let r = CoexistenceSim::new(config).unwrap().run();
        assert!(r.trace.is_none());
    }

    #[test]
    fn two_unprotected_nodes_carrier_sense_each_other() {
        // With Wi-Fi effectively absent (tiny power), two ZigBee pairs at
        // nearby locations share the channel through plain CSMA: both
        // should deliver essentially everything.
        let mut config = SimConfig::unprotected(Location::A, 52);
        config.wifi.tx_power = Dbm::new(-60.0);
        config.extra_nodes.push(ExtraNodeConfig::at(Location::C));
        config.duration = SimDuration::from_secs(4);
        let r = CoexistenceSim::new(config).unwrap().run();
        for (i, node) in r.per_node.iter().enumerate() {
            let pdr = node.delivered as f64 / node.generated.max(1) as f64;
            assert!(pdr > 0.8, "node {i} PDR {pdr} on a clear channel");
        }
    }

    #[test]
    fn new_rejects_invalid_config() {
        let mut config = SimConfig::bicord(Location::A, 1);
        config.duration = SimDuration::ZERO;
        assert!(CoexistenceSim::new(config).is_err());

        let mut config = SimConfig::bicord(Location::A, 1);
        config.zigbee.burst.n_packets = 0;
        assert!(CoexistenceSim::new(config).is_err());
    }

    #[test]
    fn zero_rate_fault_profile_is_bit_identical_to_no_faults() {
        use bicord_sim::obs::VecSink;
        use bicord_sim::FaultProfile;
        let base = {
            let mut c = SimConfig::bicord(Location::A, 21);
            c.duration = SimDuration::from_secs(2);
            c
        };
        let mut faulted = base.clone();
        faulted.fault = FaultProfile {
            control_loss: 0.0,
            cts_loss: 0.0,
            csi_false_positive: 0.0,
            churn_period: None,
            churn_range_m: 3.0, // irrelevant without a churn period
        };
        let mut sink_a = VecSink::new();
        let mut sink_b = VecSink::new();
        let a = CoexistenceSim::with_sink(base, &mut sink_a).unwrap().run();
        let b = CoexistenceSim::with_sink(faulted, &mut sink_b)
            .unwrap()
            .run();
        assert_eq!(a, b, "zero-rate faults must not perturb the run");
        assert_eq!(sink_a.events, sink_b.events, "traces must match");
    }

    #[test]
    fn heavy_control_loss_degrades_to_csma_without_deadlock() {
        use bicord_sim::obs::VecSink;
        use bicord_sim::FaultProfile;
        let run = |control_loss: f64| {
            let mut config = SimConfig::bicord(Location::A, 22);
            config.duration = SimDuration::from_secs(8);
            config.fault = FaultProfile {
                control_loss,
                ..FaultProfile::default()
            };
            let mut sink = VecSink::new();
            let r = CoexistenceSim::with_sink(config, &mut sink).unwrap().run();
            (r, sink)
        };

        // Moderate loss: controls survive often enough (each control packet
        // spans several Wi-Fi frames, so the classifier gets multiple
        // samples per packet) and coordination keeps working.
        let (moderate, sink) = run(0.25);
        assert!(moderate.zigbee.generated > 0);
        assert!(moderate.wifi.reservations > 0);
        assert!(
            moderate.zigbee_pdr() > 0.6,
            "25% loss PDR {}",
            moderate.zigbee_pdr()
        );
        assert!(!sink.of_kind("fault_control_lost").is_empty());

        // Extreme loss: whole signaling rounds go unanswered, the bounded
        // retry exhausts, and the client degrades to plain CSMA for the
        // rest of the burst — but the run still completes and delivers.
        let (extreme, sink) = run(0.9);
        assert!(extreme.zigbee.generated > 0);
        assert!(
            extreme.zigbee_pdr() > 0.3,
            "coordination must degrade gracefully, PDR {}",
            extreme.zigbee_pdr()
        );
        assert!(
            extreme.zigbee.csma_fallbacks > 0,
            "90% control loss must trigger CSMA fallback at least once"
        );
        assert!(!sink.of_kind("signaling_backoff").is_empty());
        assert_eq!(
            sink.of_kind("csma_fallback").len() as u64,
            extreme.zigbee.csma_fallbacks
        );
    }

    #[test]
    fn cts_loss_exposes_white_spaces_to_contention() {
        use bicord_sim::obs::VecSink;
        use bicord_sim::FaultProfile;
        let mut config = SimConfig::bicord(Location::A, 23);
        config.extra_wifi = Some(crate::config::ExtraWifiConfig::default());
        config.duration = SimDuration::from_secs(4);
        config.fault = FaultProfile {
            cts_loss: 1.0,
            ..FaultProfile::default()
        };
        let mut sink = VecSink::new();
        let r = CoexistenceSim::with_sink(config, &mut sink).unwrap().run();
        let lost = sink.of_kind("fault_cts_lost").len() as u64;
        assert_eq!(
            lost, r.wifi.reservations,
            "every reservation's CTS was configured to be lost"
        );
        assert!(r.zigbee.generated > 0);
    }

    #[test]
    fn fault_churn_composes_with_mobility_deterministically() {
        use bicord_sim::obs::VecSink;
        use bicord_sim::FaultProfile;
        use bicord_workloads::mobility::DeviceMobility;
        let config = || {
            let mut c = SimConfig::bicord(Location::A, 24);
            c.duration = SimDuration::from_secs(3);
            let mut walk_rng = bicord_sim::stream_rng(24, bicord_sim::SeedDomain::Aux, 0);
            c.device_mobility = Some(DeviceMobility::generate(
                Location::A.sender_position(),
                1.0,
                c.duration,
                SimDuration::from_millis(400),
                &mut walk_rng,
            ));
            c.fault = FaultProfile {
                churn_period: Some(SimDuration::from_millis(250)),
                churn_range_m: 0.5,
                ..FaultProfile::default()
            };
            c
        };
        let run = || {
            let mut sink = VecSink::new();
            let r = CoexistenceSim::with_sink(config(), &mut sink)
                .unwrap()
                .run();
            let churn = sink.of_kind("fault_churn");
            assert!(!churn.is_empty(), "churn steps must fire");
            // Cached link budgets existed and were actually dropped at
            // least once (the invalidate_shadowing path is exercised).
            let dropped: u32 = churn
                .iter()
                .map(|e| match e {
                    TraceEvent::FaultChurn { dropped, .. } => *dropped,
                    _ => 0,
                })
                .sum();
            assert!(dropped > 0, "churn never invalidated a cached entry");
            // Mobility's own invalidations still fire alongside churn.
            assert!(!sink.of_kind("medium_cache_invalidated").is_empty());
            (r, sink)
        };
        let (a, sink_a) = run();
        let (b, sink_b) = run();
        assert_eq!(a, b, "churn + mobility must stay deterministic");
        assert_eq!(sink_a.events, sink_b.events);
    }

    #[test]
    fn instrumented_run_matches_uninstrumented_results() {
        use bicord_sim::obs::VecSink;
        let mut config = SimConfig::bicord(Location::A, 7);
        config.duration = SimDuration::from_secs(3);

        let plain = CoexistenceSim::new(config.clone()).unwrap().run();
        let mut sink = VecSink::new();
        let traced = CoexistenceSim::with_sink(config, &mut sink).unwrap().run();

        // Instrumentation must be an observer, never a participant.
        assert_eq!(plain.zigbee.delivered, traced.zigbee.delivered);
        assert_eq!(plain.wifi.reservations, traced.wifi.reservations);
        assert_eq!(
            plain.zigbee.signaling_rounds,
            traced.zigbee.signaling_rounds
        );

        // The trace mirrors the aggregate counters.
        assert_eq!(
            sink.of_kind("reservation").len() as u64,
            traced.wifi.reservations
        );
        assert_eq!(
            sink.of_kind("packet_delivered").len() as u64,
            traced.zigbee.delivered
        );
        assert!(!sink.of_kind("dequeue").is_empty());
        assert!(!sink.of_kind("csi_classified").is_empty());
        assert!(!sink.of_kind("estimate").is_empty());
        assert!(!sink.of_kind("channel_request").is_empty());
        assert!(!sink.of_kind("white_space").is_empty());

        // Records arrive in non-decreasing simulation-time order per kind
        // (the DES dequeues monotonically; sub-events share the dequeue time).
        let times: Vec<u64> = sink
            .of_kind("dequeue")
            .iter()
            .map(|e| e.time_us())
            .collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
    }
}
