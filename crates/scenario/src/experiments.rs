//! One runner per experiment of the paper's evaluation (Sec. VIII).
//!
//! Every function sweeps the same parameter grid as the corresponding
//! table/figure and returns plain result rows; the `bicord-bench` binaries
//! print them in the paper's shape. Durations are parameters so the same
//! runners serve both quick integration tests and the full regeneration.
//!
//! Each run of a grid cell is an independent `(seed, config)` simulation,
//! so every sweep flattens its grid in serial nesting order and fans the
//! cells out over [`bicord_sim::par::parallel_map`]. The harness preserves
//! input order and each cell derives all randomness from its own seed, so
//! results are bitwise identical to the serial loops for any thread count
//! (`BICORD_THREADS` selects the worker count).

use bicord_core::allocation::AllocatorConfig;
use bicord_core::cti::{classify, extract_features, fingerprint_weights, KMeans, KMeansConfig};
use bicord_ctc::delay_models::CtcScheme;
use bicord_phy::interferers::{generate_trace, InterfererKind, TraceConfig, TRACE_DURATION};
use bicord_phy::units::Dbm;
use bicord_sim::par::parallel_map;
use bicord_sim::{stream_rng, SeedDomain, SimDuration};
use bicord_workloads::mobility::{DeviceMobility, PersonMobility};
use bicord_workloads::priority::PrioritySchedule;
use bicord_workloads::traffic::{ArrivalProcess, BurstSpec};

use crate::config::SimConfig;
use crate::geometry::Location;
use crate::sim::CoexistenceSim;

// ---------------------------------------------------------------------
// Tables I & II — cross-technology signaling precision/recall
// ---------------------------------------------------------------------

/// One cell of Table I/II.
#[derive(Debug, Clone, PartialEq)]
pub struct SignalingCell {
    /// ZigBee sender location.
    pub location: Location,
    /// Signaling power.
    pub power: Dbm,
    /// Control packets per request.
    pub packets: u32,
    /// Detection precision (Table I).
    pub precision: f64,
    /// Detection recall (Table II).
    pub recall: f64,
}

/// The powers of Tables I/II.
pub fn table_powers() -> [Dbm; 3] {
    [Dbm::new(0.0), Dbm::new(-1.0), Dbm::new(-3.0)]
}

/// Runs the full Table I/II grid: 4 locations × 3 powers × {3,4,5} control
/// packets, `trials` signaling bursts each (600 in the paper).
pub fn table1_2(seed: u64, trials: u32) -> Vec<SignalingCell> {
    let mut jobs = Vec::new();
    for location in Location::all() {
        for power in table_powers() {
            for packets in [3u32, 4, 5] {
                jobs.push((location, power, packets));
            }
        }
    }
    parallel_map(jobs, move |(location, power, packets)| {
        let config = SimConfig::signaling_trial(location, seed, packets, trials, power);
        let r = CoexistenceSim::new(config)
            .expect("experiment presets build valid configs")
            .run();
        SignalingCell {
            location,
            power,
            packets,
            precision: r.detection.precision,
            recall: r.detection.recall,
        }
    })
}

// ---------------------------------------------------------------------
// Fig. 7/8/9 — adaptive white-space allocation
// ---------------------------------------------------------------------

/// Outcome of one adaptive-allocation run.
#[derive(Debug, Clone, PartialEq)]
pub struct AllocationRun {
    /// ZigBee sender location.
    pub location: Location,
    /// Learning step, ms (30 or 40).
    pub step_ms: u64,
    /// Packets per burst (5, 10 or 15).
    pub burst_packets: u32,
    /// White-space length of every reservation, in order (the Fig. 7
    /// staircase).
    pub ws_history_ms: Vec<f64>,
    /// Estimate updates before convergence (Fig. 8).
    pub iterations: u32,
    /// Final white space, ms (Fig. 9).
    pub final_ws_ms: f64,
    /// The burst's actual duration, ms (for the over-provision ratio).
    pub burst_duration_ms: f64,
    /// Whether the allocator converged within the run.
    pub converged: bool,
}

impl AllocationRun {
    /// `final_ws / burst_duration − 1` (Fig. 9's over-provision).
    pub fn overprovision(&self) -> f64 {
        self.final_ws_ms / self.burst_duration_ms - 1.0
    }
}

/// The nominal duration of one ZigBee burst: per packet, the acknowledged
/// exchange plus the CSMA overhead (CCA + mean backoff + IFS ≈ 1.9 ms)
/// plus the application interval, minus the trailing interval.
pub fn burst_duration(n_packets: u32, mpdu_bytes: usize, interval: SimDuration) -> SimDuration {
    let exchange = bicord_phy::airtime::zigbee_exchange_airtime(mpdu_bytes);
    // CCA (128 µs) + mean first backoff (3.5 × 320 µs) + LIFS (640 µs).
    let csma_overhead = SimDuration::from_micros(128 + 1_120 + 640);
    (exchange + csma_overhead + interval) * u64::from(n_packets) - interval
}

/// Runs one adaptive-allocation experiment (Sec. VIII-C setting: bursts
/// every 200 ms, 50 B packets).
pub fn allocation_run(
    location: Location,
    seed: u64,
    step: SimDuration,
    burst_packets: u32,
    duration: SimDuration,
) -> AllocationRun {
    let mut config = SimConfig::bicord(location, seed);
    config.duration = duration;
    config.allocator = AllocatorConfig {
        initial_step: step,
        ..AllocatorConfig::default()
    };
    config.zigbee.burst = BurstSpec {
        n_packets: burst_packets,
        mpdu_bytes: 50,
    };
    config.zigbee.arrivals = ArrivalProcess::Periodic(SimDuration::from_millis(200));
    let r = CoexistenceSim::new(config.clone())
        .expect("experiment presets build valid configs")
        .run();
    // The steady-state white space: the mean of the last reservations
    // (the raw final estimate may be caught mid-probe of the allocator's
    // opportunistic shrink).
    let hist = &r.allocation.white_space_history_ms;
    let tail = &hist[hist.len().saturating_sub(6)..];
    let final_ws_ms = if tail.is_empty() {
        r.allocation.final_estimate_ms
    } else {
        tail.iter().sum::<f64>() / tail.len() as f64
    };
    AllocationRun {
        location,
        step_ms: step.as_micros() / 1000,
        burst_packets,
        ws_history_ms: r.allocation.white_space_history_ms.clone(),
        iterations: r.allocation.learning_iterations,
        final_ws_ms,
        burst_duration_ms: burst_duration(burst_packets, 50, config.client.packet_interval)
            .as_millis_f64(),
        converged: r.allocation.converged,
    }
}

/// Fig. 7: the white-space staircase for a 10-packet burst, 30 ms step,
/// location A.
pub fn fig7_learning(seed: u64) -> AllocationRun {
    allocation_run(
        Location::A,
        seed,
        SimDuration::from_millis(30),
        10,
        SimDuration::from_secs(8),
    )
}

/// One Fig. 8/9 grid point averaged over `runs` seeds.
#[derive(Debug, Clone, PartialEq)]
pub struct AllocationSummary {
    /// ZigBee sender location.
    pub location: Location,
    /// Learning step, ms.
    pub step_ms: u64,
    /// Packets per burst.
    pub burst_packets: u32,
    /// Mean iterations to converge (Fig. 8; paper: always < 8).
    pub mean_iterations: f64,
    /// Mean converged white space, ms (Fig. 9).
    pub mean_final_ws_ms: f64,
    /// Burst duration, ms.
    pub burst_duration_ms: f64,
    /// Mean over-provision ratio (Fig. 9: 27.1 / 12.5 / 20.4 % for
    /// 5/10/15 packets).
    pub mean_overprovision: f64,
    /// Fraction of runs that converged.
    pub converged_fraction: f64,
}

/// Fig. 8 + Fig. 9: sweep locations {A,B} × steps {30,40} ms × bursts
/// {5,10,15}, `runs` repetitions each (30 in the paper).
pub fn fig8_fig9(seed: u64, runs: u64, duration: SimDuration) -> Vec<AllocationSummary> {
    let mut grid = Vec::new();
    for location in [Location::A, Location::B] {
        for step_ms in [30u64, 40] {
            for packets in [5u32, 10, 15] {
                grid.push((location, step_ms, packets));
            }
        }
    }
    let mut jobs = Vec::new();
    for &(location, step_ms, packets) in &grid {
        for k in 0..runs {
            jobs.push((location, step_ms, packets, k));
        }
    }
    let mut results = parallel_map(jobs, move |(location, step_ms, packets, k)| {
        allocation_run(
            location,
            seed + k,
            SimDuration::from_millis(step_ms),
            packets,
            duration,
        )
    })
    .into_iter();
    let mut out = Vec::new();
    for (location, step_ms, packets) in grid {
        let mut iterations = 0.0;
        let mut final_ws = 0.0;
        let mut over = 0.0;
        let mut converged = 0usize;
        let mut burst_ms = 0.0;
        for _ in 0..runs {
            let run = results.next().expect("one result per job");
            iterations += f64::from(run.iterations);
            final_ws += run.final_ws_ms;
            over += run.overprovision();
            burst_ms = run.burst_duration_ms;
            if run.converged {
                converged += 1;
            }
        }
        let n = runs as f64;
        out.push(AllocationSummary {
            location,
            step_ms,
            burst_packets: packets,
            mean_iterations: iterations / n,
            mean_final_ws_ms: final_ws / n,
            burst_duration_ms: burst_ms,
            mean_overprovision: over / n,
            converged_fraction: converged as f64 / n,
        });
    }
    out
}

// ---------------------------------------------------------------------
// Fig. 10 — comparison with ECC
// ---------------------------------------------------------------------

/// The coordination schemes compared in Fig. 10/13.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scheme {
    /// BiCord.
    Bicord,
    /// ECC with the given white-space length in ms.
    Ecc(u64),
}

impl Scheme {
    /// The schemes of Fig. 10: BiCord vs ECC-20/30/40 ms.
    pub fn fig10_set() -> [Scheme; 4] {
        [
            Scheme::Bicord,
            Scheme::Ecc(20),
            Scheme::Ecc(30),
            Scheme::Ecc(40),
        ]
    }

    /// Display label.
    pub fn label(&self) -> String {
        match self {
            Scheme::Bicord => "BiCord".to_string(),
            Scheme::Ecc(ms) => format!("ECC-{ms}ms"),
        }
    }

    /// Builds a scenario config for this scheme.
    pub fn config(&self, location: Location, seed: u64) -> SimConfig {
        match self {
            Scheme::Bicord => SimConfig::bicord(location, seed),
            Scheme::Ecc(ms) => SimConfig::ecc(location, seed, SimDuration::from_millis(*ms)),
        }
    }
}

/// One Fig. 10 data point.
#[derive(Debug, Clone, PartialEq)]
pub struct ComparisonRow {
    /// Scheme under test.
    pub scheme: Scheme,
    /// Mean inter-burst interval, ms.
    pub interval_ms: u64,
    /// Total channel utilization (Fig. 10a).
    pub utilization: f64,
    /// Mean ZigBee delay, ms (Fig. 10b).
    pub mean_delay_ms: Option<f64>,
    /// ZigBee throughput, kb/s (Fig. 10c).
    pub throughput_kbps: f64,
    /// ZigBee packet-delivery ratio.
    pub pdr: f64,
}

/// One Fig. 10 cell: a single `(seed, interval, scheme)` simulation.
fn fig10_cell(
    seed: u64,
    interval: SimDuration,
    scheme: Scheme,
    duration: SimDuration,
) -> ComparisonRow {
    let mut config = scheme.config(Location::A, seed);
    config.duration = duration;
    config.zigbee.arrivals = ArrivalProcess::Poisson(interval);
    let r = CoexistenceSim::new(config)
        .expect("experiment presets build valid configs")
        .run();
    ComparisonRow {
        scheme,
        interval_ms: interval.as_micros() / 1000,
        utilization: r.utilization,
        mean_delay_ms: r.zigbee.mean_delay_ms,
        throughput_kbps: r.zigbee.throughput_kbps,
        pdr: r.zigbee_pdr(),
    }
}

/// Fig. 10: BiCord vs ECC-20/30/40 over the paper's five Poisson burst
/// intervals.
pub fn fig10_comparison(seed: u64, duration: SimDuration) -> Vec<ComparisonRow> {
    let mut jobs = Vec::new();
    for interval in ArrivalProcess::paper_intervals() {
        for scheme in Scheme::fig10_set() {
            jobs.push((interval, scheme));
        }
    }
    parallel_map(jobs, move |(interval, scheme)| {
        fig10_cell(seed, interval, scheme, duration)
    })
}

/// One replicated Fig. 10 cell (mean ± CI over seeds).
#[derive(Debug, Clone, PartialEq)]
pub struct ComparisonStats {
    /// Scheme under test.
    pub scheme: Scheme,
    /// Mean inter-burst interval, ms.
    pub interval_ms: u64,
    /// Utilization replicates.
    pub utilization: bicord_metrics::Replicates,
    /// Mean-delay replicates, ms.
    pub delay_ms: bicord_metrics::Replicates,
    /// Throughput replicates, kb/s.
    pub throughput_kbps: bicord_metrics::Replicates,
}

/// Replicated Fig. 10: repeats [`fig10_comparison`] over `runs` seeds and
/// aggregates each cell.
pub fn fig10_replicated(seed: u64, runs: u64, duration: SimDuration) -> Vec<ComparisonStats> {
    // Every (seed, interval, scheme) cell is one independent job; the
    // sequential aggregation below sees rows in exactly the serial order.
    let mut jobs = Vec::new();
    for k in 0..runs {
        for interval in ArrivalProcess::paper_intervals() {
            for scheme in Scheme::fig10_set() {
                jobs.push((k, interval, scheme));
            }
        }
    }
    let rows = parallel_map(jobs, move |(k, interval, scheme)| {
        fig10_cell(seed + k, interval, scheme, duration)
    });
    let mut cells: Vec<ComparisonStats> = Vec::new();
    for row in rows {
        let cell = cells
            .iter_mut()
            .find(|c| c.scheme == row.scheme && c.interval_ms == row.interval_ms);
        let cell = match cell {
            Some(c) => c,
            None => {
                cells.push(ComparisonStats {
                    scheme: row.scheme,
                    interval_ms: row.interval_ms,
                    utilization: bicord_metrics::Replicates::new(),
                    delay_ms: bicord_metrics::Replicates::new(),
                    throughput_kbps: bicord_metrics::Replicates::new(),
                });
                cells.last_mut().expect("just pushed")
            }
        };
        cell.utilization.try_push(row.utilization);
        if let Some(d) = row.mean_delay_ms {
            cell.delay_ms.try_push(d);
        }
        cell.throughput_kbps.try_push(row.throughput_kbps);
    }
    cells
}

// ---------------------------------------------------------------------
// Fig. 11 — parameter study
// ---------------------------------------------------------------------

/// One Fig. 11 data point.
#[derive(Debug, Clone, PartialEq)]
pub struct ParameterRow {
    /// Which parameter was swept.
    pub dimension: &'static str,
    /// The swept value's label.
    pub value: String,
    /// Total utilization.
    pub utilization: f64,
    /// ZigBee share (the pink bars).
    pub zigbee_utilization: f64,
    /// Mean per-packet delay, ms (Fig. 11d).
    pub mean_delay_ms: Option<f64>,
}

/// Fig. 11a–d: packet length {25,50,75,100}, burst size {5,10,15}, and
/// location {A,B,C,D} sweeps (BiCord, bursts every 200 ms).
pub fn fig11_parameters(seed: u64, duration: SimDuration) -> Vec<ParameterRow> {
    let base = |seed| {
        let mut c = SimConfig::bicord(Location::A, seed);
        c.duration = duration;
        c.zigbee.arrivals = ArrivalProcess::Poisson(SimDuration::from_millis(200));
        c
    };
    // Build every cell's config up front; the fan-out only runs sims.
    let mut jobs: Vec<(&'static str, String, SimConfig)> = Vec::new();
    for bytes in [25usize, 50, 75, 100] {
        let mut config = base(seed);
        config.zigbee.burst = BurstSpec {
            n_packets: 5,
            mpdu_bytes: bytes,
        };
        jobs.push(("packet_length", format!("{bytes}B"), config));
    }
    for packets in [5u32, 10, 15] {
        let mut config = base(seed + 100);
        config.zigbee.burst = BurstSpec {
            n_packets: packets,
            mpdu_bytes: 50,
        };
        jobs.push(("burst_size", format!("{packets}pkt"), config));
    }
    for location in Location::all() {
        let mut config = base(seed + 200);
        config.location = location;
        jobs.push(("location", location.label().to_string(), config));
    }
    parallel_map(jobs, |(dimension, value, config)| {
        let r = CoexistenceSim::new(config)
            .expect("experiment presets build valid configs")
            .run();
        ParameterRow {
            dimension,
            value,
            utilization: r.utilization,
            zigbee_utilization: r.zigbee_utilization,
            mean_delay_ms: r.zigbee.mean_delay_ms,
        }
    })
}

// ---------------------------------------------------------------------
// Fig. 12 — mobility
// ---------------------------------------------------------------------

/// The Sec. VIII-F scenarios.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MobilityScenario {
    /// Everything fixed.
    Static,
    /// A person walks around the link at 1–2 m/s.
    PersonMobility,
    /// The ZigBee sender moves within 1 m.
    DeviceMobility,
}

impl MobilityScenario {
    /// All scenarios, in paper order.
    pub fn all() -> [MobilityScenario; 3] {
        [
            MobilityScenario::Static,
            MobilityScenario::PersonMobility,
            MobilityScenario::DeviceMobility,
        ]
    }

    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            MobilityScenario::Static => "static",
            MobilityScenario::PersonMobility => "person",
            MobilityScenario::DeviceMobility => "device",
        }
    }
}

/// One Fig. 12 data point.
#[derive(Debug, Clone, PartialEq)]
pub struct MobilityRow {
    /// Scenario.
    pub scenario: MobilityScenario,
    /// Mean inter-burst interval, ms.
    pub interval_ms: u64,
    /// Total utilization.
    pub utilization: f64,
    /// Mean ZigBee delay, ms.
    pub mean_delay_ms: Option<f64>,
}

/// One Fig. 12 cell: a single `(seed, interval, scenario)` simulation.
fn fig12_cell(
    seed: u64,
    interval: SimDuration,
    scenario: MobilityScenario,
    duration: SimDuration,
) -> MobilityRow {
    let mut config = SimConfig::bicord(Location::A, seed);
    config.duration = duration;
    config.zigbee.arrivals = ArrivalProcess::Poisson(interval);
    match scenario {
        MobilityScenario::Static => {}
        MobilityScenario::PersonMobility => {
            let mut rng = stream_rng(seed, SeedDomain::Mobility, 1);
            config.person = Some(PersonMobility::generate(
                duration,
                SimDuration::from_millis(100),
                &mut rng,
            ));
        }
        MobilityScenario::DeviceMobility => {
            let mut rng = stream_rng(seed, SeedDomain::Mobility, 2);
            config.device_mobility = Some(DeviceMobility::generate(
                Location::A.sender_position(),
                1.0,
                duration,
                SimDuration::from_millis(250),
                &mut rng,
            ));
        }
    }
    let r = CoexistenceSim::new(config)
        .expect("experiment presets build valid configs")
        .run();
    MobilityRow {
        scenario,
        interval_ms: interval.as_micros() / 1000,
        utilization: r.utilization,
        mean_delay_ms: r.zigbee.mean_delay_ms,
    }
}

/// Fig. 12: utilization and delay in the three mobility scenarios over two
/// burst intervals.
pub fn fig12_mobility(seed: u64, duration: SimDuration) -> Vec<MobilityRow> {
    let mut jobs = Vec::new();
    for interval in [SimDuration::from_millis(200), SimDuration::from_millis(400)] {
        for scenario in MobilityScenario::all() {
            jobs.push((interval, scenario));
        }
    }
    parallel_map(jobs, move |(interval, scenario)| {
        fig12_cell(seed, interval, scenario, duration)
    })
}

/// Fig. 12 with replication: mean ± 95 % CI over `runs` seeds per cell.
#[derive(Debug, Clone, PartialEq)]
pub struct MobilityStats {
    /// Scenario.
    pub scenario: MobilityScenario,
    /// Mean inter-burst interval, ms.
    pub interval_ms: u64,
    /// Utilization replicates.
    pub utilization: bicord_metrics::Replicates,
    /// Mean-delay replicates (ms).
    pub delay_ms: bicord_metrics::Replicates,
}

/// Replicated Fig. 12: repeats [`fig12_mobility`] over `runs` seeds and
/// aggregates each cell.
pub fn fig12_mobility_replicated(
    seed: u64,
    runs: u64,
    duration: SimDuration,
) -> Vec<MobilityStats> {
    let mut jobs = Vec::new();
    for k in 0..runs {
        for interval in [SimDuration::from_millis(200), SimDuration::from_millis(400)] {
            for scenario in MobilityScenario::all() {
                jobs.push((k, interval, scenario));
            }
        }
    }
    let rows = parallel_map(jobs, move |(k, interval, scenario)| {
        fig12_cell(seed + k, interval, scenario, duration)
    });
    let mut cells: Vec<MobilityStats> = Vec::new();
    for row in rows {
        let cell = cells
            .iter_mut()
            .find(|c| c.scenario == row.scenario && c.interval_ms == row.interval_ms);
        let cell = match cell {
            Some(c) => c,
            None => {
                cells.push(MobilityStats {
                    scenario: row.scenario,
                    interval_ms: row.interval_ms,
                    utilization: bicord_metrics::Replicates::new(),
                    delay_ms: bicord_metrics::Replicates::new(),
                });
                cells.last_mut().expect("just pushed")
            }
        };
        cell.utilization.try_push(row.utilization);
        if let Some(d) = row.mean_delay_ms {
            cell.delay_ms.try_push(d);
        }
    }
    cells
}

// ---------------------------------------------------------------------
// Fig. 13 — Wi-Fi traffic prioritisation
// ---------------------------------------------------------------------

/// One Fig. 13 data point.
#[derive(Debug, Clone, PartialEq)]
pub struct PriorityRow {
    /// Scheme under test.
    pub scheme: Scheme,
    /// High-priority share of the Wi-Fi traffic (0.1–0.5).
    pub proportion: f64,
    /// Total utilization (Fig. 13 left).
    pub utilization: f64,
    /// ZigBee share of the channel.
    pub zigbee_utilization: f64,
    /// Mean low-priority Wi-Fi frame delay, ms (Fig. 13 right).
    pub wifi_low_delay_ms: Option<f64>,
    /// ZigBee requests the Wi-Fi device ignored.
    pub ignored_requests: u64,
}

/// Fig. 13: BiCord vs ECC-20/30 under high-priority traffic shares 0.1–0.5
/// (the paper's 10 s Wi-Fi window, bursts of 5 × 50 B every 200 ms).
pub fn fig13_priority(seed: u64, duration: SimDuration) -> Vec<PriorityRow> {
    let mut jobs = Vec::new();
    for &proportion in &[0.1, 0.2, 0.3, 0.4, 0.5] {
        for scheme in [Scheme::Bicord, Scheme::Ecc(20), Scheme::Ecc(30)] {
            jobs.push((proportion, scheme));
        }
    }
    parallel_map(jobs, move |(proportion, scheme)| {
        let mut config = scheme.config(Location::A, seed);
        config.duration = duration;
        config.zigbee.arrivals = ArrivalProcess::Poisson(SimDuration::from_millis(200));
        // Paced Wi-Fi traffic so frame delay is measurable; 1.6 ms
        // keeps the offered load just under the 1 Mb/s service rate.
        config.wifi.enqueue_interval = Some(SimDuration::from_micros(1_600));
        let mut rng = stream_rng(seed, SeedDomain::Traffic, 77);
        config.priority = Some(PrioritySchedule::with_proportion(
            duration,
            proportion,
            SimDuration::from_millis(500),
            &mut rng,
        ));
        let r = CoexistenceSim::new(config)
            .expect("experiment presets build valid configs")
            .run();
        PriorityRow {
            scheme,
            proportion,
            utilization: r.utilization,
            zigbee_utilization: r.zigbee_utilization,
            wifi_low_delay_ms: r.wifi.mean_delay_ms,
            ignored_requests: r.wifi.ignored_requests,
        }
    })
}

// ---------------------------------------------------------------------
// Sec. VII-A — CTI detection accuracy
// ---------------------------------------------------------------------

/// Outcome of the CTI-detection accuracy experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct CtiAccuracy {
    /// Accuracy of recognising Wi-Fi vs other technologies (paper:
    /// 96.39 %).
    pub wifi_detection_accuracy: f64,
    /// Accuracy of identifying which of three Wi-Fi devices transmitted
    /// (paper: 89.76 %).
    pub device_id_accuracy: f64,
    /// Standard deviation of the per-device identification accuracy
    /// (paper: 2.14 %).
    pub device_id_std: f64,
}

// Instance bases partitioning `SeedDomain::Interferers` between the three
// trace populations of [`cti_accuracy`]. Each trace derives its own RNG
// (`base + index`) instead of sharing one sequential stream, so traces are
// independent jobs and the result is identical for any thread count.
const CTI_CLASSIFY_BASE: u64 = 1_000_000;
const CTI_TRAIN_BASE: u64 = 2_000_000;
const CTI_TEST_BASE: u64 = 3_000_000;

/// Sec. VII-A: technology classification over 4 × `traces_per_kind` traces
/// and device identification across Wi-Fi senders at 1/3/5 m.
pub fn cti_accuracy(seed: u64, traces_per_kind: usize) -> CtiAccuracy {
    let configs = [
        (InterfererKind::Wifi, TraceConfig::wifi(-34.3)),
        (InterfererKind::Zigbee, TraceConfig::zigbee(-50.0)),
        (InterfererKind::Bluetooth, TraceConfig::bluetooth(-45.0)),
        (InterfererKind::Microwave, TraceConfig::microwave(-35.0)),
    ];
    let mut class_jobs = Vec::new();
    for kind_idx in 0..configs.len() {
        for trace_idx in 0..traces_per_kind {
            class_jobs.push((kind_idx, trace_idx));
        }
    }
    let verdicts = parallel_map(class_jobs, |(kind_idx, trace_idx)| {
        let (kind, cfg) = &configs[kind_idx];
        let instance = CTI_CLASSIFY_BASE + (kind_idx * traces_per_kind + trace_idx) as u64;
        let mut rng = stream_rng(seed, SeedDomain::Interferers, instance);
        let trace = generate_trace(&mut rng, cfg, TRACE_DURATION);
        let verdict = classify(&extract_features(&trace, -80.0, -95.0));
        (verdict == Some(InterfererKind::Wifi)) == (*kind == InterfererKind::Wifi)
    });
    let correct_wifi_binary = verdicts.iter().filter(|&&c| c).count();
    let total = verdicts.len();

    // Device identification: Wi-Fi senders at 1, 3, 5 m (office model link
    // budgets).
    let powers = [-26.0, -34.3, -41.0];
    let mut train_jobs = Vec::new();
    for label in 0..powers.len() {
        for trace_idx in 0..traces_per_kind {
            train_jobs.push((label, trace_idx));
        }
    }
    let train_rows = parallel_map(train_jobs, |(label, trace_idx)| {
        let instance = CTI_TRAIN_BASE + (label * traces_per_kind + trace_idx) as u64;
        let mut rng = stream_rng(seed, SeedDomain::Interferers, instance);
        let t = generate_trace(&mut rng, &TraceConfig::wifi(powers[label]), TRACE_DURATION);
        (
            label,
            extract_features(&t, -80.0, -95.0).fingerprint().to_vec(),
        )
    });
    let labels: Vec<usize> = train_rows.iter().map(|(l, _)| *l).collect();
    let train: Vec<Vec<f64>> = train_rows.into_iter().map(|(_, f)| f).collect();
    let model = KMeans::fit(
        &train,
        KMeansConfig {
            k: 3,
            iterations: 30,
            seed,
            weights: Some(fingerprint_weights()),
            ..KMeansConfig::default()
        },
    );
    let mut votes = [[0usize; 3]; 3];
    for (p, &l) in train.iter().zip(&labels) {
        votes[model.assign(p)][l] += 1;
    }
    let cluster_label: Vec<usize> = votes
        .iter()
        .map(|v| {
            v.iter()
                .enumerate()
                .max_by_key(|(_, &c)| c)
                .expect("3 labels")
                .0
        })
        .collect();
    let n_test = traces_per_kind.max(30);
    let mut test_jobs = Vec::new();
    for label in 0..powers.len() {
        for trace_idx in 0..n_test {
            test_jobs.push((label, trace_idx));
        }
    }
    let model = &model;
    let cluster_label = &cluster_label;
    let hits = parallel_map(test_jobs, |(label, trace_idx)| {
        let instance = CTI_TEST_BASE + (label * n_test + trace_idx) as u64;
        let mut rng = stream_rng(seed, SeedDomain::Interferers, instance);
        let t = generate_trace(&mut rng, &TraceConfig::wifi(powers[label]), TRACE_DURATION);
        let f = extract_features(&t, -80.0, -95.0);
        cluster_label[model.assign(&f.fingerprint())] == label
    });
    let mut per_device_acc = [0.0f64; 3];
    for (label, chunk) in hits.chunks(n_test).enumerate() {
        let device_hits = chunk.iter().filter(|&&h| h).count();
        per_device_acc[label] = device_hits as f64 / n_test as f64;
    }
    let mean_acc = per_device_acc.iter().sum::<f64>() / 3.0;
    let var = per_device_acc
        .iter()
        .map(|a| (a - mean_acc).powi(2))
        .sum::<f64>()
        / 3.0;

    CtiAccuracy {
        wifi_detection_accuracy: correct_wifi_binary as f64 / total as f64,
        device_id_accuracy: mean_acc,
        device_id_std: var.sqrt(),
    }
}

// ---------------------------------------------------------------------
// Sec. VII-B — energy; Sec. III-B — motivation
// ---------------------------------------------------------------------

/// One energy-cost comparison row.
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyRow {
    /// Control packets used in the coordination.
    pub n_control: u32,
    /// Baseline (clear channel) energy, mJ.
    pub baseline_mj: f64,
    /// BiCord energy, mJ.
    pub bicord_mj: f64,
    /// Relative overhead (paper: 10–21 %).
    pub overhead: f64,
}

/// Sec. VII-B: BiCord's energy overhead for a 10 × 120 B burst with one or
/// two control packets.
pub fn energy_cost() -> Vec<EnergyRow> {
    use bicord_core::energy::{bicord_burst, clear_channel_burst};
    let base = clear_channel_burst(10, 120, Dbm::new(0.0), SimDuration::from_millis(4));
    [(1u32, 3u64), (2, 6)]
        .iter()
        .map(|&(n_control, listen_ms)| {
            let bicord = bicord_burst(
                10,
                120,
                Dbm::new(0.0),
                SimDuration::from_millis(4),
                n_control,
                120,
                Dbm::new(-1.0),
                SimDuration::from_millis(listen_ms),
            );
            EnergyRow {
                n_control,
                baseline_mj: base.total_mj(),
                bicord_mj: bicord.total_mj(),
                overhead: bicord.total_mj() / base.total_mj() - 1.0,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------
// Multiple ZigBee nodes (Sec. VI extension)
// ---------------------------------------------------------------------

/// One multi-node coexistence data point.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiNodeRow {
    /// Scheme under test.
    pub scheme: Scheme,
    /// Number of coexisting ZigBee pairs.
    pub n_nodes: usize,
    /// Total channel utilization.
    pub utilization: f64,
    /// Aggregate packet-delivery ratio.
    pub aggregate_pdr: f64,
    /// Aggregate mean delay, ms.
    pub mean_delay_ms: Option<f64>,
    /// Per-node delivery ratios.
    pub per_node_pdr: Vec<f64>,
    /// Per-node mean delays, ms.
    pub per_node_delay_ms: Vec<Option<f64>>,
}

/// One cell of the Sec. VI multi-node grid: `n_nodes` heterogeneous
/// ZigBee pairs (A: 5-packet bursts, C: 10-packet, D: 3-packet) under
/// `scheme`. The single Wi-Fi-side estimate must serve the union of the
/// requests. This is the per-cell entry point the `bicord-sweep`
/// scenario registry drives; [`multi_node`] is its deprecated grid shim.
pub fn multi_node_cell(
    scheme: Scheme,
    n_nodes: usize,
    seed: u64,
    duration: SimDuration,
) -> MultiNodeRow {
    use crate::config::ExtraNodeConfig;
    let mut config = scheme.config(Location::A, seed);
    config.duration = duration;
    config.zigbee.arrivals = ArrivalProcess::Poisson(SimDuration::from_millis(300));
    if n_nodes >= 2 {
        let mut c = ExtraNodeConfig::at(Location::C);
        c.burst = BurstSpec {
            n_packets: 10,
            mpdu_bytes: 50,
        };
        c.arrivals = ArrivalProcess::Poisson(SimDuration::from_millis(500));
        config.extra_nodes.push(c);
    }
    if n_nodes >= 3 {
        let mut d = ExtraNodeConfig::at(Location::D);
        d.burst = BurstSpec {
            n_packets: 3,
            mpdu_bytes: 50,
        };
        d.arrivals = ArrivalProcess::Poisson(SimDuration::from_millis(400));
        config.extra_nodes.push(d);
    }
    let r = CoexistenceSim::new(config)
        .expect("experiment presets build valid configs")
        .run();
    MultiNodeRow {
        scheme,
        n_nodes,
        utilization: r.utilization,
        aggregate_pdr: r.zigbee_pdr(),
        mean_delay_ms: r.zigbee.mean_delay_ms,
        per_node_pdr: r
            .per_node
            .iter()
            .map(|n| n.delivered as f64 / n.generated.max(1) as f64)
            .collect(),
        per_node_delay_ms: r.per_node.iter().map(|n| n.mean_delay_ms).collect(),
    }
}

/// Sec. VI's "multiple ZigBee nodes with different traffic pattern" as a
/// hard-wired 2 × 3 grid.
#[deprecated(
    since = "0.1.0",
    note = "drive the \"multi_node\" entry of the bicord-sweep ScenarioRegistry instead"
)]
pub fn multi_node(seed: u64, duration: SimDuration) -> Vec<MultiNodeRow> {
    let mut jobs = Vec::new();
    for scheme in [Scheme::Bicord, Scheme::Ecc(30)] {
        for n_nodes in 1..=3usize {
            jobs.push((scheme, n_nodes));
        }
    }
    parallel_map(jobs, move |(scheme, n_nodes)| {
        multi_node_cell(scheme, n_nodes, seed, duration)
    })
}

// ---------------------------------------------------------------------
// Ablations — the design choices DESIGN.md calls out
// ---------------------------------------------------------------------

/// One detector-rule ablation point.
#[derive(Debug, Clone, PartialEq)]
pub struct DetectorAblationRow {
    /// N: high-fluctuation samples required.
    pub required_highs: usize,
    /// T: continuity window, ms.
    pub window_ms: u64,
    /// Detection precision.
    pub precision: f64,
    /// Detection recall.
    pub recall: f64,
}

/// Ablation of the continuity rule (Sec. V): sweep N ∈ {1, 2, 3} and
/// T ∈ {2, 5, 10} ms at the mid-difficulty location C with the paper's
/// −1 dBm power. N = 1 shows why raw thresholding is not enough (noise
/// false positives); large T trades precision for recall.
pub fn ablation_detector(seed: u64, trials: u32) -> Vec<DetectorAblationRow> {
    use bicord_core::signaling::DetectorConfig;
    let mut jobs = Vec::new();
    for required_highs in [1usize, 2, 3] {
        for window_ms in [2u64, 5, 10] {
            jobs.push((required_highs, window_ms));
        }
    }
    parallel_map(jobs, move |(required_highs, window_ms)| {
        let mut config = SimConfig::signaling_trial(Location::C, seed, 4, trials, Dbm::new(-1.0));
        config.detector = DetectorConfig {
            required_highs,
            window: SimDuration::from_millis(window_ms),
            ..DetectorConfig::default()
        };
        let r = CoexistenceSim::new(config)
            .expect("experiment presets build valid configs")
            .run();
        DetectorAblationRow {
            required_highs,
            window_ms,
            precision: r.detection.precision,
            recall: r.detection.recall,
        }
    })
}

/// One allocator-ablation point.
#[derive(Debug, Clone, PartialEq)]
pub struct AllocatorAblationRow {
    /// Variant label.
    pub variant: &'static str,
    /// Mean inter-burst interval, ms.
    pub interval_ms: u64,
    /// Total channel utilization.
    pub utilization: f64,
    /// Mean ZigBee delay, ms.
    pub mean_delay_ms: Option<f64>,
    /// Mean reserved white space, ms.
    pub mean_ws_ms: f64,
    /// Reservations issued.
    pub reservations: u64,
}

/// Ablation of the allocator's two stabilisers beyond the paper's plain
/// Eq. 1 (opportunistic shrink; re-estimation confirmation) under dense
/// and moderate traffic. Without the shrink path the estimate ratchets to
/// the cap under burst merging; without confirmation a single false
/// positive immediately distorts a converged estimate.
pub fn ablation_allocator(seed: u64, duration: SimDuration) -> Vec<AllocatorAblationRow> {
    let variants: [(&'static str, u32, bool); 4] = [
        (
            "full",
            AllocatorConfig::default().shrink_after_clean_bursts,
            true,
        ),
        ("no-shrink", u32::MAX, true),
        (
            "no-confirm",
            AllocatorConfig::default().shrink_after_clean_bursts,
            false,
        ),
        ("neither", u32::MAX, false),
    ];
    let mut jobs = Vec::new();
    for interval_ms in [101u64, 406] {
        for (variant, shrink, confirm) in variants {
            jobs.push((interval_ms, variant, shrink, confirm));
        }
    }
    parallel_map(jobs, move |(interval_ms, variant, shrink, confirm)| {
        let mut config = SimConfig::bicord(Location::A, seed);
        config.duration = duration;
        config.zigbee.arrivals = ArrivalProcess::Poisson(SimDuration::from_millis(interval_ms));
        config.allocator = AllocatorConfig {
            shrink_after_clean_bursts: shrink,
            confirm_reestimate: confirm,
            ..AllocatorConfig::default()
        };
        let r = CoexistenceSim::new(config)
            .expect("experiment presets build valid configs")
            .run();
        let hist = &r.allocation.white_space_history_ms;
        let mean_ws = if hist.is_empty() {
            0.0
        } else {
            hist.iter().sum::<f64>() / hist.len() as f64
        };
        AllocatorAblationRow {
            variant,
            interval_ms,
            utilization: r.utilization,
            mean_delay_ms: r.zigbee.mean_delay_ms,
            mean_ws_ms: mean_ws,
            reservations: r.wifi.reservations,
        }
    })
}

/// Sec. VII-B with measured inputs: runs a BiCord simulation, extracts how
/// many control packets a coordinated burst actually used, and feeds the
/// CC2420 energy model with those measurements instead of assumptions.
#[derive(Debug, Clone, PartialEq)]
pub struct MeasuredEnergy {
    /// Mean control packets per burst observed in simulation.
    pub controls_per_burst: f64,
    /// Mean delay from burst arrival to first delivery (the listening
    /// window the radio spends waiting for its white space), ms.
    pub listen_ms: f64,
    /// Baseline clear-channel energy, mJ.
    pub baseline_mj: f64,
    /// BiCord energy with the measured overheads, mJ.
    pub bicord_mj: f64,
    /// Relative overhead.
    pub overhead: f64,
}

/// Runs the Sec. VII-B workload (10 × 120 B bursts) under BiCord and
/// converts the measured coordination overhead into energy.
pub fn energy_cost_measured(seed: u64, duration: SimDuration) -> MeasuredEnergy {
    use bicord_core::energy::{bicord_burst, clear_channel_burst};
    let mut config = SimConfig::bicord(Location::A, seed);
    config.duration = duration;
    config.zigbee.burst = BurstSpec {
        n_packets: 10,
        mpdu_bytes: 120,
    };
    config.zigbee.arrivals = ArrivalProcess::Poisson(SimDuration::from_millis(500));
    let interval = config.client.packet_interval;
    let r = CoexistenceSim::new(config)
        .expect("experiment presets build valid configs")
        .run();

    let bursts = (r.zigbee.generated / 10).max(1) as f64;
    let controls_per_burst = r.zigbee.control_packets as f64 / bursts;
    // The radio listens from each signaling round's start until its white
    // space opens — roughly the CTS turnaround (~6 ms) per round.
    let rounds_per_burst = r.zigbee.signaling_rounds as f64 / bursts;
    let listen_ms = (rounds_per_burst * 6.0).clamp(1.0, 15.0);

    let base = clear_channel_burst(10, 120, Dbm::new(0.0), interval);
    let bicord = bicord_burst(
        10,
        120,
        Dbm::new(0.0),
        interval,
        controls_per_burst.round() as u32,
        120,
        Dbm::new(0.0),
        SimDuration::from_millis_f64(listen_ms),
    );
    MeasuredEnergy {
        controls_per_burst,
        listen_ms,
        baseline_mj: base.total_mj(),
        bicord_mj: bicord.total_mj(),
        overhead: bicord.total_mj() / base.total_mj() - 1.0,
    }
}

/// One Sec. III-B motivation row: how long each CTC scheme needs to convey
/// the one-bit channel request on a busy channel.
#[derive(Debug, Clone, PartialEq)]
pub struct MotivationRow {
    /// Scheme name.
    pub scheme: &'static str,
    /// One-bit latency in ms; `None` if the scheme cannot operate on a
    /// busy channel.
    pub one_bit_ms: Option<f64>,
}

/// Sec. III-B: the synchronisation-delay comparison that motivates
/// cross-technology signaling.
pub fn motivation_ctc() -> Vec<MotivationRow> {
    CtcScheme::all()
        .into_iter()
        .map(|s| MotivationRow {
            scheme: s.name,
            one_bit_ms: s.message_delay_busy(1).map(|d| d.as_millis_f64()),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    // Experiment runners are exercised end-to-end (with short durations)
    // in the workspace integration tests; unit tests here cover the pure
    // helpers.

    #[test]
    fn burst_duration_matches_paper_anchor() {
        // 10 × 50 B with a 2 ms interval ≈ 60.4 ms (paper: 62.7 ms).
        let d = burst_duration(10, 50, SimDuration::from_millis(2));
        let ms = d.as_millis_f64();
        assert!((56.0..66.0).contains(&ms), "{ms} ms");
    }

    #[test]
    fn scheme_labels() {
        assert_eq!(Scheme::Bicord.label(), "BiCord");
        assert_eq!(Scheme::Ecc(20).label(), "ECC-20ms");
        assert_eq!(Scheme::fig10_set().len(), 4);
    }

    #[test]
    fn energy_rows_are_in_band() {
        let rows = energy_cost();
        assert_eq!(rows.len(), 2);
        for row in rows {
            assert!(
                (0.08..0.25).contains(&row.overhead),
                "overhead {}",
                row.overhead
            );
            assert!(row.bicord_mj > row.baseline_mj);
        }
    }

    #[test]
    fn motivation_rows_rank_bicord_first() {
        let rows = motivation_ctc();
        assert_eq!(rows.len(), 4);
        let bicord = rows
            .iter()
            .find(|r| r.scheme == "BiCord")
            .and_then(|r| r.one_bit_ms)
            .expect("BiCord operates on busy channels");
        for row in &rows {
            if let Some(ms) = row.one_bit_ms {
                assert!(bicord <= ms, "{} is faster than BiCord", row.scheme);
            }
        }
        assert!(
            rows.iter().any(|r| r.one_bit_ms.is_none()),
            "FreeBee cannot"
        );
    }

    #[test]
    fn cti_accuracy_reaches_paper_band() {
        let acc = cti_accuracy(42, 60);
        assert!(
            acc.wifi_detection_accuracy > 0.85,
            "wifi detection accuracy {}",
            acc.wifi_detection_accuracy
        );
        assert!(
            acc.device_id_accuracy > 0.7,
            "device id accuracy {}",
            acc.device_id_accuracy
        );
        assert!(acc.device_id_std < 0.3);
    }

    #[test]
    fn mobility_labels_and_sets() {
        assert_eq!(MobilityScenario::all().len(), 3);
        assert_eq!(MobilityScenario::Static.label(), "static");
    }

    #[test]
    fn table_powers_match_paper() {
        let p = table_powers();
        assert_eq!(p[0], Dbm::new(0.0));
        assert_eq!(p[1], Dbm::new(-1.0));
        assert_eq!(p[2], Dbm::new(-3.0));
    }
}
