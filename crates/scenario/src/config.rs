//! Scenario configuration and result structures.
//!
//! Construct a [`SimConfig`] either from a preset
//! ([`SimConfig::bicord`], [`SimConfig::ecc`], ...) or with the checked
//! [`SimConfig::builder`]; [`crate::sim::CoexistenceSim::new`] validates
//! either way and rejects inconsistent combinations with [`ConfigError`].

use std::error::Error;
use std::fmt;

use bicord_core::allocation::AllocatorConfig;
use bicord_core::client::ClientConfig;
use bicord_core::signaling::DetectorConfig;
use bicord_ctc::ecc::EccConfig;
use bicord_phy::airtime::WifiRate;
use bicord_phy::geometry::Point;
use bicord_phy::noise::NoiseBurstProcess;
use bicord_phy::units::Dbm;
use bicord_sim::{FaultProfile, SimDuration, SimTime};
use bicord_workloads::mobility::{DeviceMobility, PersonMobility};
use bicord_workloads::priority::PrioritySchedule;
use bicord_workloads::traffic::{ArrivalProcess, BurstSpec};

use crate::geometry::Location;
use crate::trace::ChannelTrace;

/// Which coordination scheme the scenario runs.
#[derive(Debug, Clone, PartialEq)]
pub enum Mode {
    /// BiCord: bidirectional coordination (the paper's contribution).
    Bicord,
    /// ECC: blind periodic white spaces (the baseline).
    Ecc(EccConfig),
    /// No coordination: plain CSMA/CA under interference (motivation).
    Unprotected,
    /// The Table I/II detector experiment: fixed control-packet bursts,
    /// detection only, no reservations.
    SignalingTrial {
        /// Control packets per trial burst (3, 4 or 5 in the tables).
        control_packets: u32,
        /// Spacing between trial bursts.
        trial_period: SimDuration,
        /// Number of trials (600 in the paper).
        trials: u32,
    },
}

/// Wi-Fi traffic configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WifiTrafficConfig {
    /// PHY rate (the paper's workload is 1 Mb/s DSSS).
    pub rate: WifiRate,
    /// Frame MPDU length (100 B in the paper).
    pub mpdu_bytes: usize,
    /// `None` = saturated sender (back-to-back frames); `Some(interval)` =
    /// one frame enqueued per interval (used where Wi-Fi delay matters,
    /// Sec. VIII-G).
    pub enqueue_interval: Option<SimDuration>,
    /// Transmission power (20 dBm in the paper).
    pub tx_power: Dbm,
    /// Energy-detection threshold above which non-Wi-Fi energy defers the
    /// sender's CCA.
    pub ed_threshold: Dbm,
}

impl Default for WifiTrafficConfig {
    fn default() -> Self {
        WifiTrafficConfig {
            rate: WifiRate::Dsss1,
            mpdu_bytes: 100,
            enqueue_interval: None,
            tx_power: Dbm::new(20.0),
            ed_threshold: Dbm::new(-58.0),
        }
    }
}

/// ZigBee traffic and radio configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ZigbeeTrafficConfig {
    /// Burst shape.
    pub burst: BurstSpec,
    /// Burst arrival process.
    pub arrivals: ArrivalProcess,
    /// Data transmission power.
    pub data_power: Dbm,
    /// Signaling power override; `None` uses the location's paper power.
    pub signal_power: Option<Dbm>,
    /// Carrier-sense busy threshold (−82 dBm for ZigBee radios).
    pub busy_threshold: Dbm,
}

impl Default for ZigbeeTrafficConfig {
    fn default() -> Self {
        ZigbeeTrafficConfig {
            burst: BurstSpec::default(),
            arrivals: ArrivalProcess::Poisson(SimDuration::from_millis(200)),
            data_power: Dbm::new(0.0),
            signal_power: None,
            busy_threshold: Dbm::new(-82.0),
        }
    }
}

/// A second Wi-Fi station contending for the same channel. It runs its
/// own DCF instance, defers to the primary sender via carrier sense, and
/// honours the NAV of the primary's CTS-to-self — the mechanism that
/// actually protects BiCord's white spaces in a multi-station network.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExtraWifiConfig {
    /// The station's position.
    pub position: Point,
    /// Frame MPDU length.
    pub mpdu_bytes: usize,
    /// Transmission power.
    pub tx_power: Dbm,
}

impl Default for ExtraWifiConfig {
    fn default() -> Self {
        ExtraWifiConfig {
            position: Point::new(1.5, -1.0),
            mpdu_bytes: 100,
            tx_power: Dbm::new(20.0),
        }
    }
}

/// An active Bluetooth (BR/EDR) interferer sharing the band — the
/// Sec. VII-A scenario where the ZigBee node must recognise that the
/// interference is *not* Wi-Fi and refrain from signaling.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BluetoothConfig {
    /// The headset/speaker position.
    pub position: Point,
    /// Transmission power (class-2 devices: ~0-4 dBm).
    pub tx_power: Dbm,
    /// Probability that a hop lands in the ZigBee listening band (AFH
    /// keeps a reduced hop set; ~0.18 near the channel).
    pub in_band_prob: f64,
}

impl Default for BluetoothConfig {
    fn default() -> Self {
        BluetoothConfig {
            position: Point::new(2.0, 1.0),
            tx_power: Dbm::new(4.0),
            in_band_prob: 0.18,
        }
    }
}

/// Configuration of one additional ZigBee sender/receiver pair beyond the
/// primary one (Sec. VI: "multiple ZigBee nodes with different traffic
/// pattern coexisting in the surroundings").
#[derive(Debug, Clone, PartialEq)]
pub struct ExtraNodeConfig {
    /// The node's Fig. 6 location.
    pub location: Location,
    /// Burst shape.
    pub burst: BurstSpec,
    /// Burst arrival process.
    pub arrivals: ArrivalProcess,
    /// Data transmission power.
    pub data_power: Dbm,
    /// Signaling power override; `None` uses the location's paper power.
    pub signal_power: Option<Dbm>,
}

impl ExtraNodeConfig {
    /// A node at `location` with the paper's default traffic.
    pub fn at(location: Location) -> Self {
        ExtraNodeConfig {
            location,
            burst: BurstSpec::default(),
            arrivals: ArrivalProcess::Poisson(SimDuration::from_millis(200)),
            data_power: Dbm::new(0.0),
            signal_power: None,
        }
    }
}

/// Complete configuration of one simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// Master seed; every stochastic component derives from it.
    pub seed: u64,
    /// Virtual run length.
    pub duration: SimDuration,
    /// Coordination scheme.
    pub mode: Mode,
    /// ZigBee sender location (Fig. 6).
    pub location: Location,
    /// Wi-Fi traffic.
    pub wifi: WifiTrafficConfig,
    /// ZigBee traffic of the primary node.
    pub zigbee: ZigbeeTrafficConfig,
    /// Additional ZigBee sender/receiver pairs sharing the channel.
    pub extra_nodes: Vec<ExtraNodeConfig>,
    /// A second contending Wi-Fi station; `None` = absent.
    pub extra_wifi: Option<ExtraWifiConfig>,
    /// An active Bluetooth interferer; `None` = absent.
    pub bluetooth: Option<BluetoothConfig>,
    /// Ambient noise-burst process.
    pub noise: NoiseBurstProcess,
    /// Walking-person disturbance timeline (Sec. VIII-F); `None` = static.
    pub person: Option<PersonMobility>,
    /// ZigBee-sender movement timeline (Sec. VIII-F); `None` = static.
    pub device_mobility: Option<DeviceMobility>,
    /// Wi-Fi priority schedule (Sec. VIII-G); `None` = always serve
    /// ZigBee requests.
    pub priority: Option<PrioritySchedule>,
    /// CSI detector rule.
    pub detector: DetectorConfig,
    /// White-space allocator parameters.
    pub allocator: AllocatorConfig,
    /// ZigBee client parameters.
    pub client: ClientConfig,
    /// Fault-injection profile; the default is fully inactive and leaves
    /// the run bit-identical to one without an injector.
    pub fault: FaultProfile,
    /// Record a [`ChannelTrace`] of every transmission and white space
    /// (returned in [`RunResults::trace`]).
    pub record_trace: bool,
    /// Wi-Fi channel (1-13). The paper uses 11 or 13.
    pub wifi_channel: u8,
    /// ZigBee channel (11-26). The paper uses 24 or 26, overlapping the
    /// Wi-Fi channel; a disjoint pair removes the interference entirely.
    pub zigbee_channel: u8,
}

impl SimConfig {
    /// A BiCord run with the paper's defaults at `location`.
    pub fn bicord(location: Location, seed: u64) -> Self {
        // The paper's effective per-packet spacing: a 50 B exchange plus
        // T_i lands at ≈ 6 ms per packet (five packets with ACK ≈ 30 ms).
        let client = ClientConfig {
            packet_interval: SimDuration::from_millis(2),
            ..ClientConfig::default()
        };
        SimConfig {
            seed,
            duration: SimDuration::from_secs(10),
            mode: Mode::Bicord,
            location,
            wifi: WifiTrafficConfig::default(),
            zigbee: ZigbeeTrafficConfig::default(),
            extra_nodes: Vec::new(),
            extra_wifi: None,
            bluetooth: None,
            noise: NoiseBurstProcess::office(),
            person: None,
            device_mobility: None,
            priority: None,
            detector: DetectorConfig::default(),
            allocator: AllocatorConfig::default(),
            client,
            fault: FaultProfile::default(),
            record_trace: false,
            wifi_channel: 11,
            zigbee_channel: 24,
        }
    }

    /// An ECC run with the given white-space length.
    pub fn ecc(location: Location, seed: u64, white_space: SimDuration) -> Self {
        SimConfig {
            mode: Mode::Ecc(EccConfig::with_white_space(white_space)),
            ..SimConfig::bicord(location, seed)
        }
    }

    /// An uncoordinated run (plain CSMA under interference).
    pub fn unprotected(location: Location, seed: u64) -> Self {
        SimConfig {
            mode: Mode::Unprotected,
            ..SimConfig::bicord(location, seed)
        }
    }

    /// A Table I/II signaling-trial run.
    pub fn signaling_trial(
        location: Location,
        seed: u64,
        control_packets: u32,
        trials: u32,
        signal_power: Dbm,
    ) -> Self {
        let trial_period = SimDuration::from_millis(100);
        let mut config = SimConfig::bicord(location, seed);
        config.mode = Mode::SignalingTrial {
            control_packets,
            trial_period,
            trials,
        };
        config.zigbee.signal_power = Some(signal_power);
        config.duration = trial_period * u64::from(trials) + SimDuration::from_millis(50);
        config
    }

    /// The effective signaling power for this run.
    pub fn effective_signal_power(&self) -> Dbm {
        self.zigbee
            .signal_power
            .unwrap_or_else(|| self.location.paper_signal_power())
    }

    /// A checked, chainable constructor (starts from the BiCord preset at
    /// [`Location::A`], seed 0).
    ///
    /// # Example
    ///
    /// ```
    /// use bicord_scenario::config::SimConfig;
    /// use bicord_scenario::geometry::Location;
    /// use bicord_sim::SimDuration;
    ///
    /// let config = SimConfig::builder()
    ///     .location(Location::C)
    ///     .seed(7)
    ///     .duration(SimDuration::from_secs(5))
    ///     .build()
    ///     .expect("valid configuration");
    /// assert_eq!(config.seed, 7);
    /// ```
    pub fn builder() -> SimConfigBuilder {
        SimConfigBuilder::new()
    }

    /// Checks the configuration for inconsistent mode/traffic/geometry
    /// combinations. [`crate::sim::CoexistenceSim::new`] calls this;
    /// builders call it in [`SimConfigBuilder::build`].
    pub fn validate(&self) -> Result<(), ConfigError> {
        if !(1..=13).contains(&self.wifi_channel) {
            return Err(ConfigError::InvalidWifiChannel(self.wifi_channel));
        }
        if !(11..=26).contains(&self.zigbee_channel) {
            return Err(ConfigError::InvalidZigbeeChannel(self.zigbee_channel));
        }
        if self.duration.is_zero() {
            return Err(ConfigError::ZeroDuration);
        }
        if self.zigbee.burst.n_packets == 0 || self.zigbee.burst.mpdu_bytes == 0 {
            return Err(ConfigError::EmptyBurst { node: 0 });
        }
        if self.zigbee.arrivals.mean_interval().is_zero() {
            return Err(ConfigError::NonPositiveInterval {
                what: "primary ZigBee burst arrivals",
            });
        }
        for (i, node) in self.extra_nodes.iter().enumerate() {
            if node.burst.n_packets == 0 || node.burst.mpdu_bytes == 0 {
                return Err(ConfigError::EmptyBurst { node: i + 1 });
            }
            if node.arrivals.mean_interval().is_zero() {
                return Err(ConfigError::NonPositiveInterval {
                    what: "extra-node burst arrivals",
                });
            }
        }
        // Node device ids are 2 + 2·n / 3 + 2·n and must stay clear of the
        // fixed ids (extra Wi-Fi station = 500); timer keys index nodes
        // with a u8.
        let node_count = 1 + self.extra_nodes.len();
        if node_count > MAX_ZIGBEE_NODES {
            return Err(ConfigError::TooManyNodes { count: node_count });
        }
        if let Some(interval) = self.wifi.enqueue_interval {
            if interval.is_zero() {
                return Err(ConfigError::NonPositiveInterval {
                    what: "Wi-Fi enqueue interval",
                });
            }
        }
        if let Some(field) = self.fault.invalid_field() {
            return Err(ConfigError::InvalidFaultProfile { field });
        }
        match &self.mode {
            Mode::SignalingTrial {
                control_packets,
                trial_period,
                trials,
            } => {
                if *trials == 0 || *control_packets == 0 {
                    return Err(ConfigError::TrialWithoutTrials {
                        trials: *trials,
                        control_packets: *control_packets,
                    });
                }
                if trial_period.is_zero() {
                    return Err(ConfigError::NonPositiveInterval {
                        what: "signaling-trial period",
                    });
                }
                if !self.extra_nodes.is_empty() {
                    return Err(ConfigError::TrialWithExtraNodes);
                }
            }
            Mode::Ecc(ecc) => {
                if ecc.white_space.is_zero() || ecc.period.is_zero() {
                    return Err(ConfigError::NonPositiveInterval {
                        what: "ECC period/white space",
                    });
                }
            }
            Mode::Bicord | Mode::Unprotected => {}
        }
        Ok(())
    }
}

/// Maximum ZigBee sender/receiver pairs per run (primary + extras): node
/// device ids `2 + 2·n` must stay below the extra Wi-Fi station's fixed
/// id 500.
pub const MAX_ZIGBEE_NODES: usize = 248;

/// Why a [`SimConfig`] was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ConfigError {
    /// Wi-Fi channel outside 1–13.
    InvalidWifiChannel(u8),
    /// ZigBee channel outside 11–26.
    InvalidZigbeeChannel(u8),
    /// The run would simulate no time at all.
    ZeroDuration,
    /// A ZigBee node's burst has zero packets or zero-byte packets.
    EmptyBurst {
        /// Node index (0 = the primary node).
        node: usize,
    },
    /// More ZigBee pairs than the device-id layout supports.
    TooManyNodes {
        /// Total node count (primary + extras).
        count: usize,
    },
    /// Signaling-trial mode measures the single primary link; extra nodes
    /// would corrupt the precision/recall ground truth.
    TrialWithExtraNodes,
    /// Signaling-trial mode with nothing to measure.
    TrialWithoutTrials {
        /// Configured trial count.
        trials: u32,
        /// Configured control packets per trial.
        control_packets: u32,
    },
    /// A period or interval that must be positive was zero.
    NonPositiveInterval {
        /// Which interval was rejected.
        what: &'static str,
    },
    /// The fault profile has an out-of-range knob.
    InvalidFaultProfile {
        /// Which [`FaultProfile`] field was rejected.
        field: &'static str,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::InvalidWifiChannel(n) => {
                write!(f, "Wi-Fi channel {n} outside the valid range 1-13")
            }
            ConfigError::InvalidZigbeeChannel(n) => {
                write!(f, "ZigBee channel {n} outside the valid range 11-26")
            }
            ConfigError::ZeroDuration => write!(f, "run duration must be positive"),
            ConfigError::EmptyBurst { node } => {
                write!(
                    f,
                    "ZigBee node {node} has an empty burst (no packets or 0 B packets)"
                )
            }
            ConfigError::TooManyNodes { count } => write!(
                f,
                "{count} ZigBee nodes exceed the supported maximum of {MAX_ZIGBEE_NODES}"
            ),
            ConfigError::TrialWithExtraNodes => {
                write!(
                    f,
                    "signaling-trial mode does not support extra ZigBee nodes"
                )
            }
            ConfigError::TrialWithoutTrials {
                trials,
                control_packets,
            } => write!(
                f,
                "signaling-trial mode needs positive trials and control packets \
                 (got {trials} trials x {control_packets} packets)"
            ),
            ConfigError::NonPositiveInterval { what } => {
                write!(f, "{what} must be positive")
            }
            ConfigError::InvalidFaultProfile { field } => {
                write!(f, "fault profile field `{field}` is out of range")
            }
        }
    }
}

impl Error for ConfigError {}

/// Chainable, validated constructor for [`SimConfig`].
///
/// Wraps a full [`SimConfig`] (starting from the BiCord preset), so every
/// preset field keeps its paper default unless overridden;
/// [`SimConfigBuilder::build`] runs [`SimConfig::validate`].
#[derive(Debug, Clone)]
pub struct SimConfigBuilder {
    config: SimConfig,
}

impl Default for SimConfigBuilder {
    fn default() -> Self {
        SimConfigBuilder::new()
    }
}

impl SimConfigBuilder {
    /// Starts from the BiCord preset at [`Location::A`], seed 0.
    pub fn new() -> Self {
        SimConfigBuilder {
            config: SimConfig::bicord(Location::A, 0),
        }
    }

    /// Master seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Virtual run length.
    pub fn duration(mut self, duration: SimDuration) -> Self {
        self.config.duration = duration;
        self
    }

    /// ZigBee sender location (Fig. 6).
    pub fn location(mut self, location: Location) -> Self {
        self.config.location = location;
        self
    }

    /// Coordination scheme (any [`Mode`] value).
    pub fn mode(mut self, mode: Mode) -> Self {
        self.config.mode = mode;
        self
    }

    /// BiCord coordination (the default).
    pub fn bicord(self) -> Self {
        self.mode(Mode::Bicord)
    }

    /// ECC baseline with the given fixed white-space length.
    pub fn ecc(self, white_space: SimDuration) -> Self {
        self.mode(Mode::Ecc(EccConfig::with_white_space(white_space)))
    }

    /// Plain CSMA under interference (no coordination).
    pub fn unprotected(self) -> Self {
        self.mode(Mode::Unprotected)
    }

    /// Table I/II signaling-trial mode; also sizes the run duration to
    /// cover the trials and applies the signaling-power override.
    pub fn signaling_trial(mut self, control_packets: u32, trials: u32, signal_power: Dbm) -> Self {
        let trial_period = SimDuration::from_millis(100);
        self.config.mode = Mode::SignalingTrial {
            control_packets,
            trial_period,
            trials,
        };
        self.config.zigbee.signal_power = Some(signal_power);
        self.config.duration = trial_period * u64::from(trials) + SimDuration::from_millis(50);
        self
    }

    /// Primary node burst shape (`n_packets` packets of `mpdu_bytes`).
    pub fn burst(mut self, n_packets: u32, mpdu_bytes: usize) -> Self {
        self.config.zigbee.burst = BurstSpec {
            n_packets,
            mpdu_bytes,
        };
        self
    }

    /// Primary node burst arrival process.
    pub fn arrivals(mut self, arrivals: ArrivalProcess) -> Self {
        self.config.zigbee.arrivals = arrivals;
        self
    }

    /// Replaces the whole ZigBee traffic configuration.
    pub fn zigbee(mut self, zigbee: ZigbeeTrafficConfig) -> Self {
        self.config.zigbee = zigbee;
        self
    }

    /// Replaces the whole Wi-Fi traffic configuration.
    pub fn wifi(mut self, wifi: WifiTrafficConfig) -> Self {
        self.config.wifi = wifi;
        self
    }

    /// Adds one extra ZigBee sender/receiver pair.
    pub fn extra_node(mut self, node: ExtraNodeConfig) -> Self {
        self.config.extra_nodes.push(node);
        self
    }

    /// Adds a second contending Wi-Fi station.
    pub fn extra_wifi(mut self, wifi: ExtraWifiConfig) -> Self {
        self.config.extra_wifi = Some(wifi);
        self
    }

    /// Adds an active Bluetooth interferer.
    pub fn bluetooth(mut self, bt: BluetoothConfig) -> Self {
        self.config.bluetooth = Some(bt);
        self
    }

    /// Ambient noise-burst process.
    pub fn noise(mut self, noise: NoiseBurstProcess) -> Self {
        self.config.noise = noise;
        self
    }

    /// Walking-person disturbance timeline (Sec. VIII-F).
    pub fn person(mut self, person: PersonMobility) -> Self {
        self.config.person = Some(person);
        self
    }

    /// ZigBee-sender movement timeline (Sec. VIII-F).
    pub fn device_mobility(mut self, mobility: DeviceMobility) -> Self {
        self.config.device_mobility = Some(mobility);
        self
    }

    /// Wi-Fi priority schedule (Sec. VIII-G).
    pub fn priority(mut self, schedule: PrioritySchedule) -> Self {
        self.config.priority = Some(schedule);
        self
    }

    /// CSI detector rule.
    pub fn detector(mut self, detector: DetectorConfig) -> Self {
        self.config.detector = detector;
        self
    }

    /// White-space allocator parameters.
    pub fn allocator(mut self, allocator: AllocatorConfig) -> Self {
        self.config.allocator = allocator;
        self
    }

    /// ZigBee client parameters.
    pub fn client(mut self, client: ClientConfig) -> Self {
        self.config.client = client;
        self
    }

    /// Fault-injection profile.
    pub fn fault(mut self, fault: FaultProfile) -> Self {
        self.config.fault = fault;
        self
    }

    /// Record a [`ChannelTrace`] of every transmission and white space.
    pub fn record_trace(mut self, record: bool) -> Self {
        self.config.record_trace = record;
        self
    }

    /// Wi-Fi channel (1–13).
    pub fn wifi_channel(mut self, channel: u8) -> Self {
        self.config.wifi_channel = channel;
        self
    }

    /// ZigBee channel (11–26).
    pub fn zigbee_channel(mut self, channel: u8) -> Self {
        self.config.zigbee_channel = channel;
        self
    }

    /// Validates and returns the configuration.
    ///
    /// # Errors
    ///
    /// Returns the first [`ConfigError`] found by [`SimConfig::validate`].
    pub fn build(self) -> Result<SimConfig, ConfigError> {
        self.config.validate()?;
        Ok(self.config)
    }
}

/// ZigBee-side outcome counters.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ZigbeeResults {
    /// Packets handed to the stack.
    pub generated: u64,
    /// Data-frame transmissions on air (including retransmissions).
    pub transmissions: u64,
    /// Packets acknowledged end-to-end.
    pub delivered: u64,
    /// Packets never delivered by the end of the run.
    pub undelivered: u64,
    /// Mean packet delay (arrival → delivery) in ms; `None` if nothing
    /// was delivered.
    pub mean_delay_ms: Option<f64>,
    /// 95th-percentile delay in ms.
    pub p95_delay_ms: Option<f64>,
    /// Maximum delay in ms.
    pub max_delay_ms: Option<f64>,
    /// Delivered payload throughput, kb/s.
    pub throughput_kbps: f64,
    /// Signaling rounds performed.
    pub signaling_rounds: u64,
    /// Control packets transmitted.
    pub control_packets: u64,
    /// Times a node degraded to plain CSMA for the rest of a burst after
    /// consecutive unanswered signaling rounds.
    pub csma_fallbacks: u64,
}

/// Wi-Fi-side outcome counters.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WifiResults {
    /// Data frames transmitted.
    pub frames_sent: u64,
    /// Data frames successfully received at F.
    pub frames_received: u64,
    /// CTS reservations issued.
    pub reservations: u64,
    /// Mean frame delay (enqueue → transmission start) in ms, when the
    /// run used enqueued (non-saturated) traffic.
    pub mean_delay_ms: Option<f64>,
    /// Requests ignored while serving high-priority traffic.
    pub ignored_requests: u64,
}

/// Detector quality (populated by signaling-trial runs).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DetectionResults {
    /// True positives.
    pub tp: u64,
    /// False positives.
    pub fp: u64,
    /// False negatives (missed trials).
    pub fn_count: u64,
    /// `TP / (TP + FP)`.
    pub precision: f64,
    /// `TP / (TP + FN)`.
    pub recall: f64,
}

/// Allocation behaviour (Fig. 7–9).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AllocationResults {
    /// White-space length of every reservation, in order (ms).
    pub white_space_history_ms: Vec<f64>,
    /// Estimate updates performed before convergence.
    pub learning_iterations: u32,
    /// Final estimate (ms).
    pub final_estimate_ms: f64,
    /// Whether the allocator had converged by the end of the run.
    pub converged: bool,
    /// White-space aborts back into learning after inconsistent `N_round`
    /// accounting.
    pub learning_aborts: u64,
}

/// Per-node outcome (index 0 = the primary node).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct NodeResults {
    /// Packets handed to this node's stack.
    pub generated: u64,
    /// Packets acknowledged end-to-end.
    pub delivered: u64,
    /// Signaling rounds this node performed.
    pub signaling_rounds: u64,
    /// Mean packet delay in ms; `None` if nothing was delivered.
    pub mean_delay_ms: Option<f64>,
}

/// Everything a run reports.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunResults {
    /// Total useful-channel utilization in `[0, 1]`.
    pub utilization: f64,
    /// ZigBee share of the window.
    pub zigbee_utilization: f64,
    /// Wi-Fi data share of the window.
    pub wifi_utilization: f64,
    /// CTS + control overhead share.
    pub overhead_fraction: f64,
    /// ZigBee-side counters (aggregated over all nodes).
    pub zigbee: ZigbeeResults,
    /// Per-node breakdown (index 0 = the primary node).
    pub per_node: Vec<NodeResults>,
    /// Wi-Fi-side counters.
    pub wifi: WifiResults,
    /// Detector quality (signaling-trial mode).
    pub detection: DetectionResults,
    /// Allocator behaviour (BiCord mode).
    pub allocation: AllocationResults,
    /// Virtual time simulated.
    pub simulated: SimDuration,
    /// Events processed (engine statistics).
    pub events: u64,
    /// The channel-activity trace, when recording was enabled.
    pub trace: Option<ChannelTrace>,
}

impl RunResults {
    /// ZigBee packet-delivery ratio.
    pub fn zigbee_pdr(&self) -> f64 {
        if self.zigbee.generated == 0 {
            0.0
        } else {
            self.zigbee.delivered as f64 / self.zigbee.generated as f64
        }
    }

    /// Per-transmission success rate (the paper's "packet reception rate":
    /// retransmissions count as separate attempts).
    pub fn zigbee_prr(&self) -> f64 {
        if self.zigbee.transmissions == 0 {
            0.0
        } else {
            self.zigbee.delivered as f64 / self.zigbee.transmissions as f64
        }
    }

    /// A multi-line human-readable summary of the run (used by the CLI
    /// and the examples).
    pub fn summary_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "utilization        {:.1}%  (Wi-Fi {:.1}%, ZigBee {:.1}%, overhead {:.1}%)\n",
            self.utilization * 100.0,
            self.wifi_utilization * 100.0,
            self.zigbee_utilization * 100.0,
            self.overhead_fraction * 100.0,
        ));
        out.push_str(&format!(
            "ZigBee             {}/{} delivered ({:.1}% PDR), throughput {:.1} kb/s\n",
            self.zigbee.delivered,
            self.zigbee.generated,
            self.zigbee_pdr() * 100.0,
            self.zigbee.throughput_kbps,
        ));
        if let Some(delay) = self.zigbee.mean_delay_ms {
            out.push_str(&format!(
                "delay              mean {delay:.1} ms, p95 {:.1} ms, max {:.1} ms\n",
                self.zigbee.p95_delay_ms.unwrap_or(f64::NAN),
                self.zigbee.max_delay_ms.unwrap_or(f64::NAN),
            ));
        }
        out.push_str(&format!(
            "coordination       {} signaling rounds, {} control packets, {} reservations\n",
            self.zigbee.signaling_rounds, self.zigbee.control_packets, self.wifi.reservations,
        ));
        if self.per_node.len() > 1 {
            for (i, node) in self.per_node.iter().enumerate() {
                out.push_str(&format!(
                    "  node {i}           {}/{} delivered, mean delay {}\n",
                    node.delivered,
                    node.generated,
                    node.mean_delay_ms
                        .map(|d| format!("{d:.1} ms"))
                        .unwrap_or_else(|| "-".to_string()),
                ));
            }
        }
        out
    }
}

/// The instant the observation window opens (skipping initial transients).
pub const WARMUP: SimTime = SimTime::ZERO;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bicord_defaults_match_paper() {
        let c = SimConfig::bicord(Location::A, 1);
        assert_eq!(c.wifi.mpdu_bytes, 100);
        assert_eq!(c.zigbee.burst.n_packets, 5);
        assert_eq!(c.zigbee.burst.mpdu_bytes, 50);
        assert_eq!(c.effective_signal_power(), Dbm::new(0.0));
        assert_eq!(c.mode, Mode::Bicord);
    }

    #[test]
    fn ecc_config_carries_white_space() {
        let c = SimConfig::ecc(Location::A, 1, SimDuration::from_millis(20));
        match &c.mode {
            Mode::Ecc(e) => assert_eq!(e.white_space, SimDuration::from_millis(20)),
            other => panic!("unexpected mode {other:?}"),
        }
    }

    #[test]
    fn signal_power_override_wins() {
        let mut c = SimConfig::bicord(Location::D, 1);
        assert_eq!(c.effective_signal_power(), Dbm::new(-3.0));
        c.zigbee.signal_power = Some(Dbm::new(-7.0));
        assert_eq!(c.effective_signal_power(), Dbm::new(-7.0));
    }

    #[test]
    fn trial_config_sizes_duration() {
        let c = SimConfig::signaling_trial(Location::B, 2, 4, 600, Dbm::new(0.0));
        match c.mode {
            Mode::SignalingTrial {
                control_packets,
                trials,
                trial_period,
            } => {
                assert_eq!(control_packets, 4);
                assert_eq!(trials, 600);
                assert!(c.duration >= trial_period * 600);
            }
            ref other => panic!("unexpected mode {other:?}"),
        }
    }

    #[test]
    fn summary_text_is_complete() {
        let mut r = RunResults {
            utilization: 0.82,
            wifi_utilization: 0.65,
            zigbee_utilization: 0.17,
            ..RunResults::default()
        };
        r.zigbee.generated = 10;
        r.zigbee.delivered = 9;
        r.zigbee.mean_delay_ms = Some(25.0);
        r.zigbee.p95_delay_ms = Some(60.0);
        r.zigbee.max_delay_ms = Some(80.0);
        r.per_node = vec![NodeResults::default(), NodeResults::default()];
        let text = r.summary_text();
        assert!(text.contains("82.0%"));
        assert!(text.contains("9/10 delivered"));
        assert!(text.contains("mean 25.0 ms"));
        assert!(text.contains("node 0"));
        assert!(text.contains("node 1"));
        // Single-node runs omit the per-node breakdown.
        r.per_node.truncate(1);
        assert!(!r.summary_text().contains("node 0"));
    }

    #[test]
    fn pdr_handles_zero_generated() {
        let r = RunResults::default();
        assert_eq!(r.zigbee_pdr(), 0.0);
    }

    #[test]
    fn builder_defaults_equal_bicord_preset() {
        let built = SimConfig::builder().build().unwrap();
        assert_eq!(built, SimConfig::bicord(Location::A, 0));
    }

    #[test]
    fn builder_overrides_compose() {
        let c = SimConfig::builder()
            .seed(9)
            .location(Location::C)
            .duration(SimDuration::from_secs(3))
            .burst(10, 50)
            .ecc(SimDuration::from_millis(20))
            .build()
            .unwrap();
        assert_eq!(c.seed, 9);
        assert_eq!(c.location, Location::C);
        assert_eq!(c.zigbee.burst.n_packets, 10);
        assert!(matches!(c.mode, Mode::Ecc(_)));
    }

    #[test]
    fn validate_rejects_bad_channels() {
        assert_eq!(
            SimConfig::builder().wifi_channel(0).build().unwrap_err(),
            ConfigError::InvalidWifiChannel(0)
        );
        assert_eq!(
            SimConfig::builder().zigbee_channel(27).build().unwrap_err(),
            ConfigError::InvalidZigbeeChannel(27)
        );
    }

    #[test]
    fn validate_rejects_degenerate_runs() {
        assert_eq!(
            SimConfig::builder()
                .duration(SimDuration::ZERO)
                .build()
                .unwrap_err(),
            ConfigError::ZeroDuration
        );
        assert_eq!(
            SimConfig::builder().burst(0, 50).build().unwrap_err(),
            ConfigError::EmptyBurst { node: 0 }
        );
        assert_eq!(
            SimConfig::builder()
                .arrivals(ArrivalProcess::Poisson(SimDuration::ZERO))
                .build()
                .unwrap_err(),
            ConfigError::NonPositiveInterval {
                what: "primary ZigBee burst arrivals"
            }
        );
    }

    #[test]
    fn validate_rejects_inconsistent_trial_mode() {
        let err = SimConfig::builder()
            .signaling_trial(4, 10, Dbm::new(0.0))
            .extra_node(ExtraNodeConfig::at(Location::B))
            .build()
            .unwrap_err();
        assert_eq!(err, ConfigError::TrialWithExtraNodes);
        let err = SimConfig::builder()
            .signaling_trial(4, 10, Dbm::new(0.0))
            .duration(SimDuration::from_secs(1)) // restore a duration
            .mode(Mode::SignalingTrial {
                control_packets: 0,
                trial_period: SimDuration::from_millis(100),
                trials: 10,
            })
            .build()
            .unwrap_err();
        assert!(matches!(err, ConfigError::TrialWithoutTrials { .. }));
    }

    #[test]
    fn validate_rejects_out_of_range_fault_profile() {
        let err = SimConfig::builder()
            .fault(FaultProfile {
                control_loss: 2.0,
                ..FaultProfile::default()
            })
            .build()
            .unwrap_err();
        assert_eq!(
            err,
            ConfigError::InvalidFaultProfile {
                field: "control_loss"
            }
        );
        assert!(err.to_string().contains("control_loss"));
    }

    #[test]
    fn validate_rejects_extra_node_with_empty_burst() {
        let mut node = ExtraNodeConfig::at(Location::B);
        node.burst.n_packets = 0;
        assert_eq!(
            SimConfig::builder().extra_node(node).build().unwrap_err(),
            ConfigError::EmptyBurst { node: 1 }
        );
    }

    #[test]
    fn config_error_messages_are_descriptive() {
        let msgs = [
            ConfigError::InvalidWifiChannel(0).to_string(),
            ConfigError::TooManyNodes { count: 300 }.to_string(),
            ConfigError::TrialWithoutTrials {
                trials: 0,
                control_packets: 4,
            }
            .to_string(),
        ];
        assert!(msgs[0].contains("1-13"));
        assert!(msgs[1].contains("248"));
        assert!(msgs[2].contains("0 trials"));
    }

    #[test]
    fn presets_all_validate() {
        SimConfig::bicord(Location::A, 1).validate().unwrap();
        SimConfig::ecc(Location::B, 1, SimDuration::from_millis(20))
            .validate()
            .unwrap();
        SimConfig::unprotected(Location::C, 1).validate().unwrap();
        SimConfig::signaling_trial(Location::D, 1, 4, 10, Dbm::new(0.0))
            .validate()
            .unwrap();
    }
}
