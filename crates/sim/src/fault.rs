//! Deterministic fault injection for coordination-protocol robustness
//! studies.
//!
//! BiCord's coordination loop assumes its one-bit signaling survives the
//! channel: control packets must disturb the Wi-Fi CSI stream, CTS-to-self
//! must reach every contender, and the learning phase's `N_round` count must
//! not be skewed by lost or phantom rounds. [`FaultProfile`] describes how
//! often each of those assumptions is violated and [`FaultInjector`] turns
//! the profile into reproducible per-event coin flips.
//!
//! # Reproducibility contract
//!
//! The injector draws from its **own** RNG stream
//! ([`SeedDomain::Fault`]), so enabling faults
//! never perturbs any other component's draw order. Moreover every decision
//! method is a no-op (no draw at all) when its rate is exactly `0.0`, which
//! makes a zero-rate profile observably identical to running without the
//! injector — a property the test suite checks bit-for-bit.
//!
//! # Example
//!
//! ```
//! use bicord_sim::fault::{FaultInjector, FaultProfile};
//!
//! let profile = FaultProfile {
//!     control_loss: 1.0,
//!     ..FaultProfile::default()
//! };
//! let mut injector = FaultInjector::from_master_seed(profile, 42);
//! assert!(injector.drop_control());
//! assert!(!injector.drop_cts()); // rate 0.0: never fires, never draws
//! assert_eq!(injector.control_losses(), 1);
//! ```

use rand::rngs::StdRng;

use crate::dist::bernoulli;
use crate::rng::{stream_rng, SeedDomain};
use crate::time::SimDuration;

/// Per-category fault rates for one simulation run.
///
/// The default profile is fully inactive: every rate is `0.0` and churn is
/// disabled, so `FaultProfile::default()` leaves a run bit-identical to one
/// that never constructed an injector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultProfile {
    /// Probability that a ZigBee control packet's CSI signature is lost or
    /// truncated, so the classifier misses (or mis-counts) the continuity
    /// samples it should have produced. Range `[0, 1]`.
    pub control_loss: f64,
    /// Probability that a CTS-to-self fails to reach a contending Wi-Fi
    /// station, which then keeps transmitting inside the "reserved" white
    /// space. Range `[0, 1]`.
    pub cts_loss: f64,
    /// Probability that a quiet CSI sample is classified as a ZigBee
    /// disturbance anyway (a phantom channel request). Range `[0, 1]`.
    pub csi_false_positive: f64,
    /// If set, the ZigBee sender's position is perturbed every period
    /// (device churn), invalidating cached link budgets and stressing the
    /// allocator's expiry/re-estimation machinery.
    pub churn_period: Option<SimDuration>,
    /// Maximum per-axis position perturbation, in metres, applied at each
    /// churn step. Only meaningful when [`churn_period`](Self::churn_period)
    /// is set.
    pub churn_range_m: f64,
}

impl Default for FaultProfile {
    fn default() -> Self {
        FaultProfile {
            control_loss: 0.0,
            cts_loss: 0.0,
            csi_false_positive: 0.0,
            churn_period: None,
            churn_range_m: 1.0,
        }
    }
}

impl FaultProfile {
    /// `true` if any fault category can fire.
    pub fn is_active(&self) -> bool {
        self.control_loss > 0.0
            || self.cts_loss > 0.0
            || self.csi_false_positive > 0.0
            || self.churn_period.is_some()
    }

    /// Checks every knob, returning the name of the first invalid field.
    ///
    /// Rates must lie in `[0, 1]`; a configured churn period must be
    /// positive and the churn range finite and non-negative.
    pub fn invalid_field(&self) -> Option<&'static str> {
        let rate_ok = |r: f64| (0.0..=1.0).contains(&r);
        if !rate_ok(self.control_loss) {
            return Some("control_loss");
        }
        if !rate_ok(self.cts_loss) {
            return Some("cts_loss");
        }
        if !rate_ok(self.csi_false_positive) {
            return Some("csi_false_positive");
        }
        if self.churn_period == Some(SimDuration::ZERO) {
            return Some("churn_period");
        }
        if !(self.churn_range_m.is_finite() && self.churn_range_m >= 0.0) {
            return Some("churn_range_m");
        }
        None
    }
}

/// Draws reproducible fault decisions according to a [`FaultProfile`].
///
/// Each decision method consumes at most one draw from the injector's
/// dedicated RNG stream, and exactly zero draws when the corresponding rate
/// is `0.0`. The injector also counts every injected fault so harnesses can
/// report them without a trace sink.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    profile: FaultProfile,
    rng: StdRng,
    control_losses: u64,
    cts_losses: u64,
    false_positives: u64,
    churn_steps: u64,
}

impl FaultInjector {
    /// An injector drawing from the given RNG.
    pub fn new(profile: FaultProfile, rng: StdRng) -> Self {
        FaultInjector {
            profile,
            rng,
            control_losses: 0,
            cts_losses: 0,
            false_positives: 0,
            churn_steps: 0,
        }
    }

    /// An injector seeded from the master seed via the dedicated
    /// [`SeedDomain::Fault`] stream (instance 0).
    pub fn from_master_seed(profile: FaultProfile, master: u64) -> Self {
        FaultInjector::new(profile, stream_rng(master, SeedDomain::Fault, 0))
    }

    /// The profile this injector was built with.
    pub fn profile(&self) -> &FaultProfile {
        &self.profile
    }

    /// Should this control packet's CSI signature be suppressed?
    pub fn drop_control(&mut self) -> bool {
        if self.profile.control_loss <= 0.0 {
            return false;
        }
        let hit = bernoulli(&mut self.rng, self.profile.control_loss);
        if hit {
            self.control_losses += 1;
        }
        hit
    }

    /// Should this CTS-to-self be lost on the way to contenders?
    pub fn drop_cts(&mut self) -> bool {
        if self.profile.cts_loss <= 0.0 {
            return false;
        }
        let hit = bernoulli(&mut self.rng, self.profile.cts_loss);
        if hit {
            self.cts_losses += 1;
        }
        hit
    }

    /// Should this quiet CSI sample be turned into a phantom disturbance?
    pub fn phantom_csi(&mut self) -> bool {
        if self.profile.csi_false_positive <= 0.0 {
            return false;
        }
        let hit = bernoulli(&mut self.rng, self.profile.csi_false_positive);
        if hit {
            self.false_positives += 1;
        }
        hit
    }

    /// A per-axis churn offset in metres, uniform in
    /// `[-churn_range_m, churn_range_m]`. Also bumps the churn counter, so
    /// call it exactly once per churn step.
    pub fn churn_offset(&mut self) -> (f64, f64) {
        use rand::Rng;
        self.churn_steps += 1;
        let r = self.profile.churn_range_m;
        if r <= 0.0 {
            return (0.0, 0.0);
        }
        let dx = self.rng.gen_range(-r..=r);
        let dy = self.rng.gen_range(-r..=r);
        (dx, dy)
    }

    /// Control packets whose CSI signature was suppressed.
    pub fn control_losses(&self) -> u64 {
        self.control_losses
    }

    /// CTS-to-self frames lost before reaching contenders.
    pub fn cts_losses(&self) -> u64 {
        self.cts_losses
    }

    /// Phantom disturbances injected into the CSI stream.
    pub fn false_positives(&self) -> u64 {
        self.false_positives
    }

    /// Churn steps applied.
    pub fn churn_steps(&self) -> u64 {
        self.churn_steps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    fn injector(profile: FaultProfile) -> FaultInjector {
        FaultInjector::from_master_seed(profile, 7)
    }

    #[test]
    fn default_profile_is_inactive_and_valid() {
        let p = FaultProfile::default();
        assert!(!p.is_active());
        assert_eq!(p.invalid_field(), None);
    }

    #[test]
    fn any_nonzero_knob_activates() {
        for p in [
            FaultProfile {
                control_loss: 0.1,
                ..FaultProfile::default()
            },
            FaultProfile {
                cts_loss: 0.1,
                ..FaultProfile::default()
            },
            FaultProfile {
                csi_false_positive: 0.1,
                ..FaultProfile::default()
            },
            FaultProfile {
                churn_period: Some(SimDuration::from_millis(500)),
                ..FaultProfile::default()
            },
        ] {
            assert!(p.is_active(), "{p:?}");
        }
    }

    #[test]
    fn invalid_field_names_the_offender() {
        let cases = [
            (
                FaultProfile {
                    control_loss: 1.5,
                    ..FaultProfile::default()
                },
                "control_loss",
            ),
            (
                FaultProfile {
                    cts_loss: -0.1,
                    ..FaultProfile::default()
                },
                "cts_loss",
            ),
            (
                FaultProfile {
                    csi_false_positive: f64::NAN,
                    ..FaultProfile::default()
                },
                "csi_false_positive",
            ),
            (
                FaultProfile {
                    churn_period: Some(SimDuration::ZERO),
                    ..FaultProfile::default()
                },
                "churn_period",
            ),
            (
                FaultProfile {
                    churn_range_m: -1.0,
                    ..FaultProfile::default()
                },
                "churn_range_m",
            ),
        ];
        for (p, field) in cases {
            assert_eq!(p.invalid_field(), Some(field));
        }
    }

    #[test]
    fn zero_rates_never_draw() {
        // At rate 0 no entropy is consumed: after exercising every decision
        // the RNG must still produce the pristine stream.
        let mut inj = injector(FaultProfile::default());
        for _ in 0..100 {
            assert!(!inj.drop_control());
            assert!(!inj.drop_cts());
            assert!(!inj.phantom_csi());
        }
        let mut pristine = stream_rng(7, SeedDomain::Fault, 0);
        assert_eq!(inj.rng.gen::<u64>(), pristine.gen::<u64>());
    }

    #[test]
    fn rate_one_always_fires_and_counts() {
        let mut inj = injector(FaultProfile {
            control_loss: 1.0,
            cts_loss: 1.0,
            csi_false_positive: 1.0,
            ..FaultProfile::default()
        });
        for _ in 0..10 {
            assert!(inj.drop_control());
            assert!(inj.drop_cts());
            assert!(inj.phantom_csi());
        }
        assert_eq!(inj.control_losses(), 10);
        assert_eq!(inj.cts_losses(), 10);
        assert_eq!(inj.false_positives(), 10);
    }

    #[test]
    fn decisions_are_reproducible() {
        let profile = FaultProfile {
            control_loss: 0.5,
            cts_loss: 0.25,
            ..FaultProfile::default()
        };
        let run = || {
            let mut inj = injector(profile);
            (0..64)
                .map(|i| {
                    if i % 2 == 0 {
                        inj.drop_control()
                    } else {
                        inj.drop_cts()
                    }
                })
                .collect::<Vec<bool>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn churn_offsets_stay_in_range() {
        let mut inj = injector(FaultProfile {
            churn_period: Some(SimDuration::from_millis(200)),
            churn_range_m: 2.0,
            ..FaultProfile::default()
        });
        for _ in 0..32 {
            let (dx, dy) = inj.churn_offset();
            assert!(dx.abs() <= 2.0 && dy.abs() <= 2.0);
        }
        assert_eq!(inj.churn_steps(), 32);
    }
}
