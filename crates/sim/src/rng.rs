//! Reproducible per-component random-number streams.
//!
//! Every stochastic model in the workspace draws from its own RNG stream,
//! derived from a single master seed plus a *domain label*. This guarantees
//! that (a) the whole simulation is reproducible from one seed, and (b)
//! adding draws to one component never perturbs another component's stream —
//! a classic pitfall in simulation studies.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Domains separating the RNG streams of independent model components.
///
/// The numeric discriminants are part of the reproducibility contract:
/// changing them changes every seeded experiment, so new domains must only
/// be appended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum SeedDomain {
    /// Path-loss shadowing draws.
    Shadowing,
    /// Thermal-noise and noise-burst process.
    Noise,
    /// CSI amplitude jitter.
    Csi,
    /// Wi-Fi MAC backoff draws.
    WifiMac,
    /// ZigBee MAC backoff draws.
    ZigbeeMac,
    /// Traffic arrival processes.
    Traffic,
    /// Frame-reception (capture/loss) coin flips.
    Reception,
    /// Mobility processes.
    Mobility,
    /// Interference-trace generation for CTI-detection experiments.
    Interferers,
    /// k-means initialisation and other learning internals.
    Learning,
    /// Free-form auxiliary draws in examples and tests.
    Aux,
    /// Fault-injection draws (control loss, CTS loss, phantom CSI, churn).
    Fault,
}

impl SeedDomain {
    fn tag(self) -> u64 {
        match self {
            SeedDomain::Shadowing => 1,
            SeedDomain::Noise => 2,
            SeedDomain::Csi => 3,
            SeedDomain::WifiMac => 4,
            SeedDomain::ZigbeeMac => 5,
            SeedDomain::Traffic => 6,
            SeedDomain::Reception => 7,
            SeedDomain::Mobility => 8,
            SeedDomain::Interferers => 9,
            SeedDomain::Learning => 10,
            SeedDomain::Aux => 11,
            SeedDomain::Fault => 12,
        }
    }
}

/// SplitMix64 — the standard seed-expansion permutation.
///
/// Used to decorrelate derived seeds; passes BigCrush as a generator and is
/// more than sufficient as a one-way mixing step here.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Derives a decorrelated seed for `(domain, instance)` from `master`.
///
/// `instance` distinguishes multiple components in the same domain (e.g.
/// several ZigBee nodes each with their own MAC stream).
///
/// # Example
///
/// ```
/// use bicord_sim::{derive_seed, SeedDomain};
///
/// let a = derive_seed(42, SeedDomain::Noise, 0);
/// let b = derive_seed(42, SeedDomain::Noise, 1);
/// let c = derive_seed(42, SeedDomain::Csi, 0);
/// assert_ne!(a, b);
/// assert_ne!(a, c);
/// assert_eq!(a, derive_seed(42, SeedDomain::Noise, 0)); // deterministic
/// ```
pub fn derive_seed(master: u64, domain: SeedDomain, instance: u64) -> u64 {
    let mut s = splitmix64(master);
    s = splitmix64(s ^ domain.tag().wrapping_mul(0xA076_1D64_78BD_642F));
    splitmix64(s ^ instance.wrapping_mul(0xE703_7ED1_A0B4_28DB))
}

/// Creates a [`StdRng`] for `(domain, instance)` derived from `master`.
///
/// # Example
///
/// ```
/// use bicord_sim::{stream_rng, SeedDomain};
/// use rand::Rng;
///
/// let mut rng = stream_rng(7, SeedDomain::Traffic, 0);
/// let x: f64 = rng.gen();
/// assert!((0.0..1.0).contains(&x));
/// ```
pub fn stream_rng(master: u64, domain: SeedDomain, instance: u64) -> StdRng {
    StdRng::seed_from_u64(derive_seed(master, domain, instance))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use std::collections::HashSet;

    #[test]
    fn seeds_are_deterministic() {
        assert_eq!(
            derive_seed(99, SeedDomain::WifiMac, 3),
            derive_seed(99, SeedDomain::WifiMac, 3)
        );
    }

    #[test]
    fn seeds_differ_across_domains_and_instances() {
        let mut seen = HashSet::new();
        let domains = [
            SeedDomain::Shadowing,
            SeedDomain::Noise,
            SeedDomain::Csi,
            SeedDomain::WifiMac,
            SeedDomain::ZigbeeMac,
            SeedDomain::Traffic,
            SeedDomain::Reception,
            SeedDomain::Mobility,
            SeedDomain::Interferers,
            SeedDomain::Learning,
            SeedDomain::Aux,
            SeedDomain::Fault,
        ];
        for d in domains {
            for inst in 0..16 {
                assert!(
                    seen.insert(derive_seed(1234, d, inst)),
                    "collision at {d:?}/{inst}"
                );
            }
        }
    }

    #[test]
    fn different_masters_decorrelate() {
        // Adjacent master seeds must not produce adjacent streams.
        let a = derive_seed(1, SeedDomain::Noise, 0);
        let b = derive_seed(2, SeedDomain::Noise, 0);
        assert_ne!(a, b);
        assert_ne!(a.wrapping_add(1), b);
    }

    #[test]
    fn streams_reproduce_sequences() {
        let seq = |master| -> Vec<u64> {
            let mut r = stream_rng(master, SeedDomain::Reception, 5);
            (0..8).map(|_| r.gen()).collect()
        };
        assert_eq!(seq(77), seq(77));
        assert_ne!(seq(77), seq(78));
    }

    #[test]
    fn splitmix_avalanche_smoke() {
        // Flipping one input bit should flip roughly half the output bits.
        let x = splitmix64(0xDEAD_BEEF);
        let y = splitmix64(0xDEAD_BEEF ^ 1);
        let flipped = (x ^ y).count_ones();
        assert!(
            (16..=48).contains(&flipped),
            "poor avalanche: {flipped} bits"
        );
    }
}
