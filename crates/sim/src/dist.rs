//! The probability distributions the radio models need.
//!
//! Implemented in-crate (on top of `rand`'s uniform source) so the workspace
//! does not need `rand_distr`: exponential inter-arrival times, Gaussian
//! shadowing/jitter via Box–Muller, and Poisson counts.

use rand::Rng;

use crate::time::SimDuration;

/// Samples an exponentially distributed value with the given `mean`.
///
/// # Panics
///
/// Panics if `mean` is not finite and positive.
///
/// # Example
///
/// ```
/// use bicord_sim::dist::exponential;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let x = exponential(&mut rng, 2.0);
/// assert!(x >= 0.0);
/// ```
pub fn exponential<R: Rng + ?Sized>(rng: &mut R, mean: f64) -> f64 {
    assert!(
        mean.is_finite() && mean > 0.0,
        "exponential mean must be positive, got {mean}"
    );
    // 1 - U is in (0, 1], so ln() is finite.
    let u: f64 = rng.gen();
    -mean * (1.0 - u).ln()
}

/// Samples an exponentially distributed duration with the given mean —
/// the inter-arrival time of a Poisson process.
///
/// # Example
///
/// ```
/// use bicord_sim::dist::exponential_duration;
/// use bicord_sim::SimDuration;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let gap = exponential_duration(&mut rng, SimDuration::from_millis(200));
/// assert!(gap >= SimDuration::ZERO);
/// ```
pub fn exponential_duration<R: Rng + ?Sized>(rng: &mut R, mean: SimDuration) -> SimDuration {
    SimDuration::from_secs_f64(exponential(rng, mean.as_secs_f64()))
}

/// Samples a normally distributed value via the Box–Muller transform.
///
/// # Panics
///
/// Panics if `std_dev` is negative or either parameter is non-finite.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, std_dev: f64) -> f64 {
    assert!(
        mean.is_finite() && std_dev.is_finite() && std_dev >= 0.0,
        "invalid normal parameters: mean={mean}, std_dev={std_dev}"
    );
    if std_dev == 0.0 {
        return mean;
    }
    // Box–Muller: two uniforms -> one standard normal (the second is
    // discarded to keep the call stateless).
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen();
    let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
    mean + std_dev * z
}

/// Samples a Poisson-distributed count with the given `mean` (λ).
///
/// Uses Knuth's product method for small λ and a normal approximation with
/// continuity correction for λ > 60, where the product method underflows.
///
/// # Panics
///
/// Panics if `mean` is negative or non-finite.
pub fn poisson<R: Rng + ?Sized>(rng: &mut R, mean: f64) -> u64 {
    assert!(
        mean.is_finite() && mean >= 0.0,
        "poisson mean must be non-negative, got {mean}"
    );
    if mean == 0.0 {
        return 0;
    }
    if mean > 60.0 {
        let x = normal(rng, mean, mean.sqrt());
        return x.max(0.0).round() as u64;
    }
    let limit = (-mean).exp();
    let mut k = 0u64;
    let mut product: f64 = 1.0;
    loop {
        product *= rng.gen::<f64>();
        if product <= limit {
            return k;
        }
        k += 1;
    }
}

/// Samples `true` with probability `p` (clamped to `[0, 1]`).
pub fn bernoulli<R: Rng + ?Sized>(rng: &mut R, p: f64) -> bool {
    if p <= 0.0 {
        false
    } else if p >= 1.0 {
        true
    } else {
        rng.gen::<f64>() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::{stream_rng, SeedDomain};
    use proptest::prelude::*;

    fn rng() -> rand::rngs::StdRng {
        stream_rng(2024, SeedDomain::Aux, 0)
    }

    #[test]
    fn exponential_mean_converges() {
        let mut r = rng();
        let n = 50_000;
        let mean = 3.0;
        let sum: f64 = (0..n).map(|_| exponential(&mut r, mean)).sum();
        let sample_mean = sum / n as f64;
        assert!(
            (sample_mean - mean).abs() < 0.05 * mean,
            "sample mean {sample_mean} too far from {mean}"
        );
    }

    #[test]
    fn exponential_is_nonnegative() {
        let mut r = rng();
        for _ in 0..10_000 {
            assert!(exponential(&mut r, 0.5) >= 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn exponential_rejects_zero_mean() {
        let mut r = rng();
        let _ = exponential(&mut r, 0.0);
    }

    #[test]
    fn exponential_duration_mean_converges() {
        let mut r = rng();
        let mean = SimDuration::from_millis(200);
        let n = 20_000u64;
        let total: SimDuration = (0..n).map(|_| exponential_duration(&mut r, mean)).sum();
        let sample_mean_ms = total.as_millis_f64() / n as f64;
        assert!((sample_mean_ms - 200.0).abs() < 10.0);
    }

    #[test]
    fn normal_moments_converge() {
        let mut r = rng();
        let n = 50_000;
        let (mean, sd) = (-5.0, 2.0);
        let samples: Vec<f64> = (0..n).map(|_| normal(&mut r, mean, sd)).collect();
        let m: f64 = samples.iter().sum::<f64>() / n as f64;
        let var: f64 = samples.iter().map(|x| (x - m).powi(2)).sum::<f64>() / n as f64;
        assert!((m - mean).abs() < 0.05);
        assert!((var.sqrt() - sd).abs() < 0.05);
    }

    #[test]
    fn normal_zero_sd_is_degenerate() {
        let mut r = rng();
        assert_eq!(normal(&mut r, 1.5, 0.0), 1.5);
    }

    #[test]
    fn poisson_small_lambda_mean() {
        let mut r = rng();
        let n = 50_000;
        let lambda = 2.5;
        let sum: u64 = (0..n).map(|_| poisson(&mut r, lambda)).sum();
        let m = sum as f64 / n as f64;
        assert!((m - lambda).abs() < 0.05);
    }

    #[test]
    fn poisson_large_lambda_uses_normal_approx() {
        let mut r = rng();
        let n = 20_000;
        let lambda = 200.0;
        let sum: u64 = (0..n).map(|_| poisson(&mut r, lambda)).sum();
        let m = sum as f64 / n as f64;
        assert!((m - lambda).abs() < 1.0);
    }

    #[test]
    fn poisson_zero_lambda_is_zero() {
        let mut r = rng();
        assert_eq!(poisson(&mut r, 0.0), 0);
    }

    #[test]
    fn bernoulli_extremes() {
        let mut r = rng();
        assert!(!bernoulli(&mut r, 0.0));
        assert!(bernoulli(&mut r, 1.0));
        assert!(!bernoulli(&mut r, -0.5));
        assert!(bernoulli(&mut r, 1.5));
    }

    #[test]
    fn bernoulli_rate_converges() {
        let mut r = rng();
        let n = 50_000;
        let hits = (0..n).filter(|_| bernoulli(&mut r, 0.3)).count();
        let rate = hits as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.01);
    }

    proptest! {
        #[test]
        fn normal_is_finite(mean in -1e6f64..1e6, sd in 0.0f64..1e3, seed in any::<u64>()) {
            let mut r = stream_rng(seed, SeedDomain::Aux, 1);
            let x = normal(&mut r, mean, sd);
            prop_assert!(x.is_finite());
        }

        #[test]
        fn exponential_is_finite(mean in 1e-6f64..1e6, seed in any::<u64>()) {
            let mut r = stream_rng(seed, SeedDomain::Aux, 2);
            let x = exponential(&mut r, mean);
            prop_assert!(x.is_finite() && x >= 0.0);
        }
    }
}
