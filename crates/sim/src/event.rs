//! A stable, timestamped event queue.
//!
//! [`EventQueue`] is a min-heap keyed on `(time, sequence)`. The sequence
//! number makes ordering *stable*: two events scheduled for the same instant
//! pop in the order they were pushed, which keeps simulations deterministic
//! regardless of heap internals.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// A handle identifying a scheduled event, usable for cancellation.
///
/// Handles are unique per [`EventQueue`] instance and never reused.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventHandle(u64);

struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we want the earliest first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic priority queue of timestamped events.
///
/// # Example
///
/// ```
/// use bicord_sim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_millis(2), 'b');
/// q.push(SimTime::from_millis(1), 'a');
/// let h = q.push(SimTime::from_millis(3), 'c');
/// q.cancel(h);
///
/// assert_eq!(q.pop(), Some((SimTime::from_millis(1), 'a')));
/// assert_eq!(q.pop(), Some((SimTime::from_millis(2), 'b')));
/// assert_eq!(q.pop(), None); // 'c' was cancelled
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    /// Sequence numbers of events that are scheduled and not yet popped or
    /// cancelled. Cancelled entries are dropped lazily at the heap head.
    pending: std::collections::HashSet<u64>,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            pending: std::collections::HashSet::new(),
        }
    }

    /// Schedules `event` at `time` and returns a cancellation handle.
    pub fn push(&mut self, time: SimTime, event: E) -> EventHandle {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time, seq, event });
        self.pending.insert(seq);
        EventHandle(seq)
    }

    /// Cancels a previously scheduled event.
    ///
    /// Returns `true` if the event had not yet been popped or cancelled.
    /// Cancelled events are dropped lazily when they reach the queue head.
    pub fn cancel(&mut self, handle: EventHandle) -> bool {
        self.pending.remove(&handle.0)
    }

    /// Removes and returns the earliest live event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some(entry) = self.heap.pop() {
            if self.pending.remove(&entry.seq) {
                return Some((entry.time, entry.event));
            }
        }
        None
    }

    /// The timestamp of the earliest live event without removing it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        // Drain cancelled entries off the head so the peeked value is live.
        while let Some(entry) = self.heap.peek() {
            if self.pending.contains(&entry.seq) {
                return Some(entry.time);
            }
            self.heap.pop();
        }
        None
    }

    /// Number of live (non-cancelled, not yet popped) events.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// `true` if no live events remain.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("live", &self.pending.len())
            .field("heap_size", &self.heap.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_micros(30), 3);
        q.push(SimTime::from_micros(10), 1);
        q.push(SimTime::from_micros(20), 2);
        assert_eq!(q.pop().unwrap().1, 1);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 3);
        assert!(q.pop().is_none());
    }

    #[test]
    fn ties_pop_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_micros(5);
        for i in 0..100 {
            q.push(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn cancel_prevents_delivery() {
        let mut q = EventQueue::new();
        let h1 = q.push(SimTime::from_micros(1), "a");
        let h2 = q.push(SimTime::from_micros(2), "b");
        assert!(q.cancel(h1));
        assert!(!q.cancel(h1), "double cancel reports false");
        assert_eq!(q.pop().unwrap().1, "b");
        assert!(q.pop().is_none());
        assert!(!q.cancel(h2), "cancel after pop reports false");
    }

    #[test]
    fn cancel_unknown_handle_is_false() {
        let mut q: EventQueue<u8> = EventQueue::new();
        assert!(!q.cancel(EventHandle(42)));
    }

    #[test]
    fn len_tracks_live_events() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        let h = q.push(SimTime::ZERO, 0);
        q.push(SimTime::ZERO, 1);
        assert_eq!(q.len(), 2);
        q.cancel(h);
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }

    #[test]
    fn peek_time_skips_cancelled_head() {
        let mut q = EventQueue::new();
        let h = q.push(SimTime::from_micros(1), "cancelled");
        q.push(SimTime::from_micros(9), "live");
        q.cancel(h);
        assert_eq!(q.peek_time(), Some(SimTime::from_micros(9)));
        assert_eq!(q.pop().unwrap().1, "live");
    }

    #[test]
    fn peek_time_empty_is_none() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert_eq!(q.peek_time(), None);
    }

    proptest! {
        #[test]
        fn pop_order_is_sorted_and_stable(times in proptest::collection::vec(0u64..1000, 1..200)) {
            let mut q = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                q.push(SimTime::from_micros(t), i);
            }
            let mut last: Option<(SimTime, usize)> = None;
            while let Some((t, idx)) = q.pop() {
                if let Some((lt, lidx)) = last {
                    prop_assert!(t >= lt, "time order violated");
                    if t == lt {
                        prop_assert!(idx > lidx, "FIFO tie-break violated");
                    }
                }
                prop_assert_eq!(SimTime::from_micros(times[idx]), t);
                last = Some((t, idx));
            }
        }

        #[test]
        fn cancelled_events_never_pop(
            times in proptest::collection::vec(0u64..1000, 1..100),
            cancel_mask in proptest::collection::vec(any::<bool>(), 100),
        ) {
            let mut q = EventQueue::new();
            let handles: Vec<_> = times
                .iter()
                .enumerate()
                .map(|(i, &t)| q.push(SimTime::from_micros(t), i))
                .collect();
            let mut expected: Vec<usize> = Vec::new();
            for (i, h) in handles.iter().enumerate() {
                if cancel_mask[i % cancel_mask.len()] {
                    q.cancel(*h);
                } else {
                    expected.push(i);
                }
            }
            let mut popped: Vec<usize> = Vec::new();
            while let Some((_, idx)) = q.pop() {
                popped.push(idx);
            }
            popped.sort_unstable();
            expected.sort_unstable();
            prop_assert_eq!(popped, expected);
        }
    }
}
