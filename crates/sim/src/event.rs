//! A stable, timestamped event queue.
//!
//! [`EventQueue`] is a min-heap keyed on `(time, sequence)`. The sequence
//! number makes ordering *stable*: two events scheduled for the same instant
//! pop in the order they were pushed, which keeps simulations deterministic
//! regardless of heap internals.
//!
//! The queue sits on the simulation's hottest path (every frame, timer and
//! sample passes through it), so the implementation avoids the obvious
//! overheads: the heap key is a single packed `u128` compare instead of a
//! two-field lexicographic compare, the live-event set hashes its dense
//! `u64` sequence numbers with a one-multiply mixer instead of SipHash, and
//! [`EventQueue::with_capacity`] / [`EventQueue::reserve`] let callers
//! pre-size both structures.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

use crate::time::SimTime;

/// A handle identifying a scheduled event, usable for cancellation.
///
/// Handles are unique per [`EventQueue`] instance and never reused.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventHandle(u64);

/// One-multiply hasher for the dense `u64` sequence numbers in the pending
/// set. SplitMix64-style finalization: fast, and sequential keys spread
/// across the whole output range (std's SipHash costs ~10× as much per
/// lookup for zero benefit against non-adversarial keys).
#[derive(Debug, Default, Clone)]
pub struct SeqHasher(u64);

impl Hasher for SeqHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        // Fallback for derived Hash impls over odd-sized fields; fold
        // bytes in.
        for &b in bytes {
            self.write_u64(u64::from(b));
        }
    }

    fn write_u32(&mut self, x: u32) {
        self.write_u64(u64::from(x));
    }

    fn write_u64(&mut self, x: u64) {
        let mut z = self.0 ^ x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        self.0 = z ^ (z >> 31);
    }
}

type SeqSet = HashSet<u64, BuildHasherDefault<SeqHasher>>;

struct Entry<E> {
    /// `(time << 64) | seq` — one `u128` compare orders by time with FIFO
    /// tie-break, replacing the two-branch lexicographic compare.
    key: u128,
    event: E,
}

#[inline]
fn pack(time: SimTime, seq: u64) -> u128 {
    (u128::from(time.as_micros()) << 64) | u128::from(seq)
}

#[inline]
fn unpack_time(key: u128) -> SimTime {
    SimTime::from_micros((key >> 64) as u64)
}

#[inline]
fn unpack_seq(key: u128) -> u64 {
    key as u64
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we want the earliest first.
        other.key.cmp(&self.key)
    }
}

/// A deterministic priority queue of timestamped events.
///
/// # Example
///
/// ```
/// use bicord_sim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_millis(2), 'b');
/// q.push(SimTime::from_millis(1), 'a');
/// let h = q.push(SimTime::from_millis(3), 'c');
/// q.cancel(h);
///
/// assert_eq!(q.pop(), Some((SimTime::from_millis(1), 'a')));
/// assert_eq!(q.pop(), Some((SimTime::from_millis(2), 'b')));
/// assert_eq!(q.pop(), None); // 'c' was cancelled
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    /// Sequence numbers of events that are scheduled and not yet popped or
    /// cancelled. Cancelled entries are dropped lazily at the heap head.
    pending: SeqSet,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            pending: SeqSet::default(),
        }
    }

    /// Creates an empty queue pre-sized for `capacity` pending events.
    pub fn with_capacity(capacity: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(capacity),
            next_seq: 0,
            pending: SeqSet::with_capacity_and_hasher(capacity, Default::default()),
        }
    }

    /// Pre-sizes for at least `additional` further events.
    pub fn reserve(&mut self, additional: usize) {
        self.heap.reserve(additional);
        self.pending.reserve(additional);
    }

    /// Schedules `event` at `time` and returns a cancellation handle.
    pub fn push(&mut self, time: SimTime, event: E) -> EventHandle {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry {
            key: pack(time, seq),
            event,
        });
        self.pending.insert(seq);
        EventHandle(seq)
    }

    /// Cancels a previously scheduled event.
    ///
    /// Returns `true` if the event had not yet been popped or cancelled.
    /// Cancelled events are dropped lazily when they reach the queue head.
    pub fn cancel(&mut self, handle: EventHandle) -> bool {
        self.pending.remove(&handle.0)
    }

    /// Removes and returns the earliest live event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some(entry) = self.heap.pop() {
            if self.pending.remove(&unpack_seq(entry.key)) {
                return Some((unpack_time(entry.key), entry.event));
            }
        }
        None
    }

    /// The timestamp of the earliest live event without removing it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        // Drain cancelled entries off the head so the peeked value is live.
        while let Some(entry) = self.heap.peek() {
            if self.pending.contains(&unpack_seq(entry.key)) {
                return Some(unpack_time(entry.key));
            }
            self.heap.pop();
        }
        None
    }

    /// Number of live (non-cancelled, not yet popped) events.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// `true` if no live events remain.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("live", &self.pending.len())
            .field("heap_size", &self.heap.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_micros(30), 3);
        q.push(SimTime::from_micros(10), 1);
        q.push(SimTime::from_micros(20), 2);
        assert_eq!(q.pop().unwrap().1, 1);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 3);
        assert!(q.pop().is_none());
    }

    #[test]
    fn ties_pop_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_micros(5);
        for i in 0..100 {
            q.push(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn cancel_prevents_delivery() {
        let mut q = EventQueue::new();
        let h1 = q.push(SimTime::from_micros(1), "a");
        let h2 = q.push(SimTime::from_micros(2), "b");
        assert!(q.cancel(h1));
        assert!(!q.cancel(h1), "double cancel reports false");
        assert_eq!(q.pop().unwrap().1, "b");
        assert!(q.pop().is_none());
        assert!(!q.cancel(h2), "cancel after pop reports false");
    }

    #[test]
    fn cancel_unknown_handle_is_false() {
        let mut q: EventQueue<u8> = EventQueue::new();
        assert!(!q.cancel(EventHandle(42)));
    }

    #[test]
    fn len_tracks_live_events() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        let h = q.push(SimTime::ZERO, 0);
        q.push(SimTime::ZERO, 1);
        assert_eq!(q.len(), 2);
        q.cancel(h);
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }

    #[test]
    fn peek_time_skips_cancelled_head() {
        let mut q = EventQueue::new();
        let h = q.push(SimTime::from_micros(1), "cancelled");
        q.push(SimTime::from_micros(9), "live");
        q.cancel(h);
        assert_eq!(q.peek_time(), Some(SimTime::from_micros(9)));
        assert_eq!(q.pop().unwrap().1, "live");
    }

    #[test]
    fn peek_time_empty_is_none() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn with_capacity_and_reserve_preserve_behaviour() {
        let mut q = EventQueue::with_capacity(64);
        for i in 0..32 {
            q.push(SimTime::from_micros(100 - i), i);
        }
        q.reserve(1_000);
        assert_eq!(q.len(), 32);
        assert_eq!(q.pop().unwrap().1, 31, "latest push had earliest time");
    }

    #[test]
    fn packed_key_roundtrips_extremes() {
        let mut q = EventQueue::new();
        q.push(SimTime::MAX, "max");
        q.push(SimTime::ZERO, "zero");
        q.push(SimTime::from_micros(u64::MAX - 1), "almost");
        assert_eq!(q.pop(), Some((SimTime::ZERO, "zero")));
        assert_eq!(
            q.pop(),
            Some((SimTime::from_micros(u64::MAX - 1), "almost"))
        );
        assert_eq!(q.pop(), Some((SimTime::MAX, "max")));
    }

    proptest! {
        #[test]
        fn pop_order_is_sorted_and_stable(times in proptest::collection::vec(0u64..1000, 1..200)) {
            let mut q = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                q.push(SimTime::from_micros(t), i);
            }
            let mut last: Option<(SimTime, usize)> = None;
            while let Some((t, idx)) = q.pop() {
                if let Some((lt, lidx)) = last {
                    prop_assert!(t >= lt, "time order violated");
                    if t == lt {
                        prop_assert!(idx > lidx, "FIFO tie-break violated");
                    }
                }
                prop_assert_eq!(SimTime::from_micros(times[idx]), t);
                last = Some((t, idx));
            }
        }

        #[test]
        fn cancelled_events_never_pop(
            times in proptest::collection::vec(0u64..1000, 1..100),
            cancel_mask in proptest::collection::vec(any::<bool>(), 100),
        ) {
            let mut q = EventQueue::new();
            let handles: Vec<_> = times
                .iter()
                .enumerate()
                .map(|(i, &t)| q.push(SimTime::from_micros(t), i))
                .collect();
            let mut expected: Vec<usize> = Vec::new();
            for (i, h) in handles.iter().enumerate() {
                if cancel_mask[i % cancel_mask.len()] {
                    q.cancel(*h);
                } else {
                    expected.push(i);
                }
            }
            let mut popped: Vec<usize> = Vec::new();
            while let Some((_, idx)) = q.pop() {
                popped.push(idx);
            }
            popped.sort_unstable();
            expected.sort_unstable();
            prop_assert_eq!(popped, expected);
        }
    }
}
