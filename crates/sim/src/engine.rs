//! The simulation run loop: a clock plus an event queue.

use crate::event::{EventHandle, EventQueue};
use crate::time::{SimDuration, SimTime};

/// A discrete-event simulation engine.
///
/// The engine owns the virtual clock and the pending-event queue. Client
/// code (the scenario layer) drives it by scheduling events and repeatedly
/// calling [`Engine::next_event`], which advances the clock to each event's
/// timestamp.
///
/// Time never moves backwards: scheduling an event in the past is a
/// programming error and panics (it would silently corrupt causality
/// otherwise).
///
/// # Example
///
/// ```
/// use bicord_sim::{Engine, SimDuration, SimTime};
///
/// #[derive(Debug, PartialEq)]
/// enum Ev { Ping, Pong }
///
/// let mut engine = Engine::new();
/// engine.schedule_in(SimDuration::from_micros(10), Ev::Ping);
/// while let Some((now, ev)) = engine.next_event() {
///     match ev {
///         Ev::Ping if now < SimTime::from_millis(1) => {
///             engine.schedule_in(SimDuration::from_micros(10), Ev::Pong);
///         }
///         _ => {}
///     }
/// }
/// assert!(engine.now() >= SimTime::from_micros(20));
/// ```
pub struct Engine<E> {
    now: SimTime,
    queue: EventQueue<E>,
    processed: u64,
    same_time_streak: u64,
}

impl<E> Default for Engine<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Engine<E> {
    /// Creates an engine with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        Engine {
            now: SimTime::ZERO,
            queue: EventQueue::new(),
            processed: 0,
            same_time_streak: 0,
        }
    }

    /// The current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total number of events delivered so far.
    pub fn events_processed(&self) -> u64 {
        self.processed
    }

    /// Number of events still pending.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Consecutive events delivered without the clock moving forward.
    ///
    /// Zero after an event that advanced the clock; otherwise the count
    /// of same-instant deliveries since. A livelock (events forever
    /// re-scheduled at the same instant) shows up as an unbounded
    /// streak, which the [`guard`](crate::guard) module's stall
    /// detector checks against a budget.
    pub fn same_time_streak(&self) -> u64 {
        self.same_time_streak
    }

    /// Schedules `event` at the absolute instant `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the current clock.
    pub fn schedule_at(&mut self, at: SimTime, event: E) -> EventHandle {
        assert!(
            at >= self.now,
            "cannot schedule into the past: {at} < {now}",
            now = self.now
        );
        self.queue.push(at, event)
    }

    /// Schedules `event` after `delay` from the current clock.
    pub fn schedule_in(&mut self, delay: SimDuration, event: E) -> EventHandle {
        self.queue.push(self.now + delay, event)
    }

    /// Cancels a scheduled event. Returns `true` if it was still pending.
    pub fn cancel(&mut self, handle: EventHandle) -> bool {
        self.queue.cancel(handle)
    }

    /// Pops the next event, advancing the clock to its timestamp.
    ///
    /// Returns `None` when the queue is exhausted.
    pub fn next_event(&mut self) -> Option<(SimTime, E)> {
        let (t, e) = self.queue.pop()?;
        debug_assert!(t >= self.now, "event queue yielded a past event");
        if t == self.now && self.processed > 0 {
            self.same_time_streak += 1;
        } else {
            self.same_time_streak = 0;
        }
        self.now = t;
        self.processed += 1;
        Some((t, e))
    }

    /// Pops the next event only if it occurs at or before `horizon`.
    ///
    /// If the next event lies beyond the horizon the clock advances to
    /// `horizon` and `None` is returned; the event stays queued. This is the
    /// primitive for "run for N seconds" loops.
    pub fn next_event_before(&mut self, horizon: SimTime) -> Option<(SimTime, E)> {
        match self.queue.peek_time() {
            Some(t) if t <= horizon => self.next_event(),
            _ => {
                if horizon > self.now {
                    self.now = horizon;
                    self.same_time_streak = 0;
                }
                None
            }
        }
    }
}

impl<E> std::fmt::Debug for Engine<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("now", &self.now)
            .field("pending", &self.queue.len())
            .field("processed", &self.processed)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_advances_with_events() {
        let mut e = Engine::new();
        e.schedule_at(SimTime::from_millis(5), "late");
        e.schedule_at(SimTime::from_millis(1), "early");
        let (t, ev) = e.next_event().unwrap();
        assert_eq!((t, ev), (SimTime::from_millis(1), "early"));
        assert_eq!(e.now(), SimTime::from_millis(1));
        let (t, ev) = e.next_event().unwrap();
        assert_eq!((t, ev), (SimTime::from_millis(5), "late"));
        assert_eq!(e.events_processed(), 2);
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_in_past_panics() {
        let mut e = Engine::new();
        e.schedule_at(SimTime::from_millis(10), ());
        e.next_event();
        e.schedule_at(SimTime::from_millis(3), ());
    }

    #[test]
    fn schedule_in_is_relative() {
        let mut e = Engine::new();
        e.schedule_at(SimTime::from_millis(10), 1);
        e.next_event();
        e.schedule_in(SimDuration::from_millis(5), 2);
        let (t, _) = e.next_event().unwrap();
        assert_eq!(t, SimTime::from_millis(15));
    }

    #[test]
    fn horizon_stops_and_advances_clock() {
        let mut e = Engine::new();
        e.schedule_at(SimTime::from_millis(100), "far");
        assert!(e.next_event_before(SimTime::from_millis(50)).is_none());
        assert_eq!(e.now(), SimTime::from_millis(50));
        assert_eq!(e.pending(), 1);
        // The event is still deliverable later.
        let (t, ev) = e.next_event_before(SimTime::from_millis(200)).unwrap();
        assert_eq!((t, ev), (SimTime::from_millis(100), "far"));
    }

    #[test]
    fn horizon_with_empty_queue_advances_clock() {
        let mut e: Engine<()> = Engine::new();
        assert!(e.next_event_before(SimTime::from_secs(1)).is_none());
        assert_eq!(e.now(), SimTime::from_secs(1));
        // A later horizon keeps advancing; an earlier one does not rewind.
        assert!(e.next_event_before(SimTime::from_millis(1)).is_none());
        assert_eq!(e.now(), SimTime::from_secs(1));
    }

    #[test]
    fn same_time_streak_tracks_clock_progress() {
        let mut e = Engine::new();
        e.schedule_at(SimTime::from_millis(1), 0);
        e.schedule_at(SimTime::from_millis(1), 1);
        e.schedule_at(SimTime::from_millis(1), 2);
        e.schedule_at(SimTime::from_millis(2), 3);
        e.next_event();
        assert_eq!(e.same_time_streak(), 0, "first delivery at a new instant");
        e.next_event();
        assert_eq!(e.same_time_streak(), 1);
        e.next_event();
        assert_eq!(e.same_time_streak(), 2);
        e.next_event();
        assert_eq!(e.same_time_streak(), 0, "clock moved, streak resets");
        // Horizon-driven clock advance also resets the streak.
        e.schedule_at(SimTime::from_millis(2), 4);
        e.next_event();
        assert_eq!(e.same_time_streak(), 1);
        assert!(e.next_event_before(SimTime::from_millis(9)).is_none());
        assert_eq!(e.same_time_streak(), 0);
    }

    #[test]
    fn cancelled_events_are_skipped() {
        let mut e = Engine::new();
        let h = e.schedule_at(SimTime::from_millis(1), "gone");
        e.schedule_at(SimTime::from_millis(2), "kept");
        assert!(e.cancel(h));
        let (_, ev) = e.next_event().unwrap();
        assert_eq!(ev, "kept");
    }
}
