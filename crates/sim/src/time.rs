//! Microsecond-resolution virtual time.
//!
//! All simulated time in the workspace is expressed as [`SimTime`] (an
//! absolute instant since simulation start) and [`SimDuration`] (a span).
//! Both wrap a `u64` count of microseconds, which comfortably covers
//! ~584 000 years of simulated time — far beyond any experiment here — while
//! keeping arithmetic exact, hashable, and platform-independent.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Rem, Sub, SubAssign};

/// An absolute instant of virtual time, in microseconds since simulation
/// start.
///
/// `SimTime` is ordered, hashable, and cheap to copy. Subtracting two
/// instants yields a [`SimDuration`]; adding a duration yields a new instant.
///
/// # Example
///
/// ```
/// use bicord_sim::{SimDuration, SimTime};
///
/// let t = SimTime::from_millis(3) + SimDuration::from_micros(500);
/// assert_eq!(t.as_micros(), 3_500);
/// assert_eq!(t - SimTime::ZERO, SimDuration::from_micros(3_500));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of virtual time, in microseconds.
///
/// # Example
///
/// ```
/// use bicord_sim::SimDuration;
///
/// let d = SimDuration::from_millis(20) * 3;
/// assert_eq!(d.as_millis_f64(), 60.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant (useful as an "infinite" deadline).
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant `us` microseconds after simulation start.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Creates an instant `ms` milliseconds after simulation start.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Creates an instant `s` seconds after simulation start.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// Microseconds since simulation start.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Milliseconds since simulation start, as a float.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Seconds since simulation start, as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// The duration elapsed since `earlier`, saturating to zero if `earlier`
    /// is in the future.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked addition of a duration; `None` on overflow.
    pub fn checked_add(self, d: SimDuration) -> Option<SimTime> {
        self.0.checked_add(d.0).map(SimTime)
    }

    /// Checked subtraction producing a duration; `None` if `earlier` is
    /// later than `self`.
    pub fn checked_since(self, earlier: SimTime) -> Option<SimDuration> {
        self.0.checked_sub(earlier.0).map(SimDuration)
    }

    /// The earlier of two instants.
    pub fn min(self, other: SimTime) -> SimTime {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// The later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        if self >= other {
            self
        } else {
            other
        }
    }
}

impl SimDuration {
    /// The zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable span.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a span of `us` microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Creates a span of `ms` milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Creates a span of `s` seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Creates a span from a float number of seconds, rounding to the
    /// nearest microsecond and saturating at zero / `MAX`.
    pub fn from_secs_f64(s: f64) -> Self {
        if s <= 0.0 {
            SimDuration::ZERO
        } else {
            let us = (s * 1e6).round();
            if us >= u64::MAX as f64 {
                SimDuration::MAX
            } else {
                SimDuration(us as u64)
            }
        }
    }

    /// Creates a span from a float number of milliseconds (rounded, clamped
    /// at zero).
    pub fn from_millis_f64(ms: f64) -> Self {
        Self::from_secs_f64(ms / 1_000.0)
    }

    /// The span in whole microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// The span in milliseconds, as a float.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// The span in seconds, as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// `true` if the span is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Checked subtraction; `None` if `other > self`.
    pub fn checked_sub(self, other: SimDuration) -> Option<SimDuration> {
        self.0.checked_sub(other.0).map(SimDuration)
    }

    /// Saturating multiplication by an integer factor.
    pub fn saturating_mul(self, k: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(k))
    }

    /// Multiplies the span by a non-negative float factor, rounding to the
    /// nearest microsecond.
    ///
    /// # Panics
    ///
    /// Panics if `k` is negative or NaN.
    pub fn mul_f64(self, k: f64) -> SimDuration {
        assert!(k >= 0.0, "duration factor must be non-negative, got {k}");
        SimDuration::from_secs_f64(self.as_secs_f64() * k)
    }

    /// The smaller of two spans.
    pub fn min(self, other: SimDuration) -> SimDuration {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// The larger of two spans.
    pub fn max(self, other: SimDuration) -> SimDuration {
        if self >= other {
            self
        } else {
            other
        }
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Mul<SimDuration> for u64 {
    type Output = SimDuration;
    fn mul(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self * rhs.0)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Div<SimDuration> for SimDuration {
    type Output = u64;
    /// Integer division: how many whole `rhs` spans fit into `self`.
    fn div(self, rhs: SimDuration) -> u64 {
        self.0 / rhs.0
    }
}

impl Rem<SimDuration> for SimDuration {
    type Output = SimDuration;
    fn rem(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 % rhs.0)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.3}ms", self.as_millis_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else {
            write!(f, "{}us", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn construction_roundtrips() {
        assert_eq!(SimTime::from_millis(7).as_micros(), 7_000);
        assert_eq!(SimTime::from_secs(2).as_micros(), 2_000_000);
        assert_eq!(SimDuration::from_millis(7).as_micros(), 7_000);
        assert_eq!(SimDuration::from_secs(3).as_micros(), 3_000_000);
    }

    #[test]
    fn time_arithmetic() {
        let t = SimTime::from_millis(10);
        let d = SimDuration::from_millis(4);
        assert_eq!((t + d).as_micros(), 14_000);
        assert_eq!((t - d).as_micros(), 6_000);
        assert_eq!(t - SimTime::from_millis(4), SimDuration::from_millis(6));
    }

    #[test]
    fn saturating_since_clamps_to_zero() {
        let early = SimTime::from_millis(1);
        let late = SimTime::from_millis(5);
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
        assert_eq!(late.saturating_since(early), SimDuration::from_millis(4));
    }

    #[test]
    fn checked_since_detects_inversion() {
        let early = SimTime::from_millis(1);
        let late = SimTime::from_millis(5);
        assert_eq!(early.checked_since(late), None);
        assert_eq!(late.checked_since(early), Some(SimDuration::from_millis(4)));
    }

    #[test]
    fn duration_float_conversions() {
        let d = SimDuration::from_secs_f64(0.0627);
        assert_eq!(d.as_micros(), 62_700);
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_millis_f64(1.5).as_micros(), 1_500);
    }

    #[test]
    fn duration_division_and_remainder() {
        let d = SimDuration::from_millis(70);
        let step = SimDuration::from_millis(30);
        assert_eq!(d / step, 2);
        assert_eq!(d % step, SimDuration::from_millis(10));
    }

    #[test]
    fn mul_f64_scales() {
        let d = SimDuration::from_millis(10);
        assert_eq!(d.mul_f64(2.5), SimDuration::from_micros(25_000));
        assert_eq!(d.mul_f64(0.0), SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn mul_f64_rejects_negative() {
        let _ = SimDuration::from_millis(1).mul_f64(-0.5);
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = (1..=4).map(SimDuration::from_millis).sum();
        assert_eq!(total, SimDuration::from_millis(10));
    }

    #[test]
    fn display_picks_sensible_unit() {
        assert_eq!(SimDuration::from_micros(20).to_string(), "20us");
        assert_eq!(SimDuration::from_millis(20).to_string(), "20.000ms");
        assert_eq!(SimDuration::from_secs(2).to_string(), "2.000s");
        assert_eq!(SimTime::from_millis(1).to_string(), "t=1.000ms");
    }

    #[test]
    fn min_max_helpers() {
        let a = SimTime::from_millis(1);
        let b = SimTime::from_millis(2);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
        let da = SimDuration::from_millis(1);
        let db = SimDuration::from_millis(2);
        assert_eq!(da.min(db), da);
        assert_eq!(da.max(db), db);
    }

    proptest! {
        #[test]
        fn add_then_sub_roundtrips(base in 0u64..1 << 40, delta in 0u64..1 << 40) {
            let t = SimTime::from_micros(base);
            let d = SimDuration::from_micros(delta);
            prop_assert_eq!((t + d) - d, t);
            prop_assert_eq!((t + d) - t, d);
        }

        #[test]
        fn duration_ordering_consistent(a in 0u64..1 << 40, b in 0u64..1 << 40) {
            let da = SimDuration::from_micros(a);
            let db = SimDuration::from_micros(b);
            prop_assert_eq!(da < db, a < b);
            prop_assert_eq!(da.min(db).as_micros(), a.min(b));
            prop_assert_eq!(da.max(db).as_micros(), a.max(b));
        }

        #[test]
        fn div_rem_identity(a in 0u64..1 << 40, b in 1u64..1 << 20) {
            let d = SimDuration::from_micros(a);
            let s = SimDuration::from_micros(b);
            let q = d / s;
            let r = d % s;
            prop_assert_eq!(s * q + r, d);
            prop_assert!(r < s);
        }
    }
}
