//! Parallel execution of independent replicate cells.
//!
//! Every replicated experiment in the workspace is a grid of independent
//! `(seed, config)` cells — embarrassingly parallel work that the seed
//! code ran strictly serially. This module provides an order-preserving
//! [`parallel_map`] built on `std::thread::scope` and a shared
//! `Mutex<VecDeque>` job queue (no external dependencies), plus the
//! `BICORD_THREADS` knob.
//!
//! # Determinism contract
//!
//! `parallel_map(inputs, f)` returns exactly
//! `inputs.into_iter().map(f).collect()` — same values, same order —
//! for **every** thread count, provided `f` is a pure function of its
//! input. Each cell derives all randomness from its own seed, so
//! scheduling order cannot leak into results; callers aggregate the
//! returned `Vec` serially, so aggregation order is fixed too.
//!
//! # Sizing
//!
//! Worker count resolution, in order:
//! 1. an explicit [`parallel_map_threads`] argument,
//! 2. the `BICORD_THREADS` environment variable,
//! 3. [`std::thread::available_parallelism`].
//!
//! Workers pull one cell at a time from the shared queue, so long cells
//! (e.g. 30 s simulations) and short ones (signaling trials) balance
//! without static chunking.

use std::collections::VecDeque;
use std::sync::Mutex;

/// Resolves the worker count: `BICORD_THREADS` if set and valid,
/// otherwise the machine's available parallelism.
///
/// # Example
///
/// ```
/// let n = bicord_sim::par::num_threads();
/// assert!(n >= 1);
/// ```
pub fn num_threads() -> usize {
    if let Ok(v) = std::env::var("BICORD_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
        eprintln!("warning: ignoring invalid BICORD_THREADS={v:?}");
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Maps `f` over `inputs` on [`num_threads`] workers, preserving input
/// order in the output.
///
/// See the module docs for the determinism contract.
///
/// # Example
///
/// ```
/// use bicord_sim::par::parallel_map;
///
/// let squares = parallel_map((0u64..100).collect(), |x| x * x);
/// assert_eq!(squares[7], 49);
/// assert_eq!(squares.len(), 100);
/// ```
pub fn parallel_map<T, R, F>(inputs: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    parallel_map_threads(num_threads(), inputs, f)
}

/// [`parallel_map`] with an explicit worker count (used by the
/// determinism tests to pin 1/2/8 threads regardless of environment).
///
/// # Panics
///
/// Propagates the first worker panic after all workers stop.
pub fn parallel_map_threads<T, R, F>(threads: usize, inputs: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = inputs.len();
    let threads = threads.clamp(1, n.max(1));
    if threads <= 1 || n <= 1 {
        return inputs.into_iter().map(f).collect();
    }

    let queue: Mutex<VecDeque<(usize, T)>> = Mutex::new(inputs.into_iter().enumerate().collect());
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                // Hold the queue lock only for the pop; the cell itself
                // runs unlocked.
                let job = queue.lock().expect("job queue poisoned").pop_front();
                let Some((index, input)) = job else { break };
                let result = f(input);
                *slots[index].lock().expect("result slot poisoned") = Some(result);
            });
        }
    });

    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every job ran to completion")
        })
        .collect()
}

/// Runs `f` over the replicate seeds `master + 0 .. master + runs`,
/// in parallel, preserving seed order — the common shape of the paper's
/// "30 seeded runs" sweeps.
///
/// # Example
///
/// ```
/// use bicord_sim::par::replicate_seeds;
///
/// let doubled = replicate_seeds(100, 4, |seed| seed * 2);
/// assert_eq!(doubled, vec![200, 202, 204, 206]);
/// ```
pub fn replicate_seeds<R, F>(master: u64, runs: u64, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(u64) -> R + Sync,
{
    parallel_map((0..runs).map(|k| master + k).collect(), f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn preserves_order_across_thread_counts() {
        let inputs: Vec<u64> = (0..257).collect();
        let serial: Vec<u64> = inputs.iter().map(|x| x * 3 + 1).collect();
        for threads in [1, 2, 3, 8, 64] {
            let out = parallel_map_threads(threads, inputs.clone(), |x| x * 3 + 1);
            assert_eq!(out, serial, "threads={threads}");
        }
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<u32> = parallel_map_threads(8, Vec::<u32>::new(), |x| x);
        assert!(empty.is_empty());
        let one = parallel_map_threads(8, vec![41], |x| x + 1);
        assert_eq!(one, vec![42]);
    }

    #[test]
    fn all_jobs_run_exactly_once() {
        let counter = AtomicUsize::new(0);
        let out = parallel_map_threads(4, (0..100usize).collect(), |x| {
            counter.fetch_add(1, Ordering::Relaxed);
            x
        });
        assert_eq!(counter.load(Ordering::Relaxed), 100);
        assert_eq!(out, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn uneven_work_balances() {
        // Long jobs early, short late: single-cell pulls mean no worker
        // idles while the queue is non-empty, and order still holds.
        let out = parallel_map_threads(4, (0..40u64).collect(), |x| {
            if x < 4 {
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            x * x
        });
        assert_eq!(out, (0..40u64).map(|x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn replicate_seeds_orders_by_seed() {
        assert_eq!(replicate_seeds(10, 3, |s| s), vec![10, 11, 12]);
        assert!(replicate_seeds(10, 0, |s| s).is_empty());
    }

    #[test]
    #[should_panic]
    fn worker_panic_propagates() {
        let _ = parallel_map_threads(2, vec![0u32, 1, 2, 3], |x| {
            assert!(x != 2, "boom");
            x
        });
    }

    #[test]
    fn num_threads_is_positive() {
        assert!(num_threads() >= 1);
    }
}
