//! Runtime invariant guard for simulation runs.
//!
//! A long sweep dies ugliest when one cell livelocks (events forever
//! re-scheduled at the same instant), leaks a burst that never
//! completes, or silently corrupts its transmission accounting. The
//! guard watches for exactly those failure classes *from inside* the
//! run loop and turns them into structured [`GuardViolation`]s instead
//! of infinite loops or wrong numbers:
//!
//! * **Stall** — no simulated-time progress across a budget of
//!   consecutive dequeues ([`Engine::same_time_streak`] feeds the
//!   check). Fatal: the run aborts with
//!   [`GuardViolation::StallDetected`].
//! * **Liveness** — a burst that started must complete (or abort)
//!   within a virtual-time bound. Non-fatal: surfaced as a
//!   `guard_liveness` trace record and counter, once per node.
//! * **Conservation** — the scenario's begin/end transmission counts
//!   must match the medium's active-transmission slab, and the accrued
//!   busy airtime must fit the physical capacity of the run window.
//!   Non-fatal: surfaced as `guard_conservation` trace records.
//!
//! # Zero cost when disabled
//!
//! The guard follows the [`EventSink`](crate::obs::EventSink) pattern:
//! scenarios are generic over a [`SimGuard`] implementation defaulting
//! to the zero-sized [`NoopGuard`], whose hooks are empty and whose
//! [`SimGuard::enabled`] is a compile-time `false`. An unguarded run
//! therefore compiles to exactly the pre-guard code — goldens, RNG
//! streams and results are bit-identical. [`RuntimeGuard`] draws no
//! randomness and emits nothing on a healthy run, so even an *enabled*
//! guard never perturbs results; it only observes.
//!
//! [`Engine::same_time_streak`]: crate::engine::Engine::same_time_streak

use crate::time::{SimDuration, SimTime};

/// Tunable bounds of a [`RuntimeGuard`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GuardConfig {
    /// Consecutive dequeues without simulated-time progress that count
    /// as a livelock. Events legitimately share timestamps (a frame end
    /// fans out into several same-instant actions), so the budget is
    /// deliberately generous; a true livelock crosses any bound.
    pub stall_dequeue_budget: u64,
    /// Virtual-time bound between a burst starting and completing;
    /// `None` disables the liveness check.
    pub burst_timeout: Option<SimDuration>,
    /// Whether to check transmission-count and airtime conservation.
    pub conservation: bool,
}

impl Default for GuardConfig {
    fn default() -> Self {
        GuardConfig {
            stall_dequeue_budget: 1_000_000,
            burst_timeout: Some(SimDuration::from_secs(10)),
            conservation: true,
        }
    }
}

/// A violated runtime invariant, with enough context to debug it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GuardViolation {
    /// The run dequeued `dequeues` consecutive events without the
    /// virtual clock moving — a livelock. Fatal.
    StallDetected {
        /// Virtual time the clock is stuck at, in microseconds.
        t_us: u64,
        /// Consecutive same-instant dequeues observed.
        dequeues: u64,
    },
    /// A burst exceeded the liveness bound without completing.
    BurstOverdue {
        /// Time of the check, in microseconds.
        t_us: u64,
        /// Node whose burst is overdue.
        node: u32,
        /// When the burst started, in microseconds.
        started_us: u64,
    },
    /// A conservation invariant does not balance.
    ConservationBroken {
        /// Time of the check, in microseconds.
        t_us: u64,
        /// Which invariant broke (`"active_transmissions"`,
        /// `"airtime_accounting"`).
        invariant: &'static str,
        /// The value the invariant predicts.
        expected: u64,
        /// The value actually observed.
        actual: u64,
    },
}

impl GuardViolation {
    /// Stable short label of the violation class (matches the trace
    /// kind it is reported under).
    pub fn kind(&self) -> &'static str {
        match self {
            GuardViolation::StallDetected { .. } => "guard_stall",
            GuardViolation::BurstOverdue { .. } => "guard_liveness",
            GuardViolation::ConservationBroken { .. } => "guard_conservation",
        }
    }
}

impl std::fmt::Display for GuardViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GuardViolation::StallDetected { t_us, dequeues } => write!(
                f,
                "no simulated-time progress across {dequeues} dequeues at t={t_us}us"
            ),
            GuardViolation::BurstOverdue {
                t_us,
                node,
                started_us,
            } => write!(
                f,
                "node {node} burst started at t={started_us}us still open at t={t_us}us"
            ),
            GuardViolation::ConservationBroken {
                t_us,
                invariant,
                expected,
                actual,
            } => write!(
                f,
                "{invariant} conservation broken at t={t_us}us: expected {expected}, got {actual}"
            ),
        }
    }
}

impl std::error::Error for GuardViolation {}

/// Per-violation-class counts accumulated by a [`RuntimeGuard`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GuardSummary {
    /// Stalls detected (at most 1 — a stall aborts the run).
    pub stalls: u64,
    /// Overdue bursts reported.
    pub liveness: u64,
    /// Conservation mismatches reported.
    pub conservation: u64,
}

impl GuardSummary {
    /// Whether any invariant was violated.
    pub fn any(&self) -> bool {
        self.stalls + self.liveness + self.conservation > 0
    }
}

impl std::fmt::Display for GuardSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "stalls={} liveness={} conservation={}",
            self.stalls, self.liveness, self.conservation
        )
    }
}

/// The guard interface scenarios call from their run loop.
///
/// Hooks are monomorphized into the hot path; [`NoopGuard`]'s empty
/// bodies compile away entirely. Check methods return the violation so
/// the *scenario* decides how to surface it (trace record, counter,
/// abort) — the guard itself never panics and never emits.
pub trait SimGuard {
    /// `false` for guards that check nothing — lets the run loop skip
    /// the check calls (and their argument computation) entirely.
    #[inline]
    fn enabled(&self) -> bool {
        true
    }

    /// Called after each dequeue with the engine's current same-instant
    /// streak. Returns the (fatal) stall violation when the streak
    /// crosses the budget.
    fn check_stall(&mut self, now: SimTime, same_time_streak: u64) -> Option<GuardViolation>;

    /// Records that `node` started a burst at `now`.
    fn on_burst_start(&mut self, now: SimTime, node: u32);

    /// Records that `node`'s burst completed (or aborted).
    fn on_burst_end(&mut self, node: u32);

    /// Returns the first newly-overdue burst, if any. Each overdue
    /// burst is reported at most once.
    fn check_liveness(&mut self, now: SimTime) -> Option<GuardViolation>;

    /// Records that the scenario started one transmission on the
    /// medium.
    fn on_tx_begin(&mut self);

    /// Called at the start of end-of-transmission handling with the
    /// medium's current active-transmission count; checks the begin/end
    /// balance against it and accounts for the end.
    fn check_tx_end(&mut self, now: SimTime, medium_active: u64) -> Option<GuardViolation>;

    /// End-of-run check that the accrued busy airtime fits the
    /// physical capacity of the window (`capacity_us` = window length ×
    /// maximum concurrent transmitters).
    fn check_airtime(
        &mut self,
        end_us: u64,
        busy_us: u64,
        capacity_us: u64,
    ) -> Option<GuardViolation>;
}

impl<G: SimGuard + ?Sized> SimGuard for &mut G {
    #[inline]
    fn enabled(&self) -> bool {
        (**self).enabled()
    }

    #[inline]
    fn check_stall(&mut self, now: SimTime, same_time_streak: u64) -> Option<GuardViolation> {
        (**self).check_stall(now, same_time_streak)
    }

    #[inline]
    fn on_burst_start(&mut self, now: SimTime, node: u32) {
        (**self).on_burst_start(now, node)
    }

    #[inline]
    fn on_burst_end(&mut self, node: u32) {
        (**self).on_burst_end(node)
    }

    #[inline]
    fn check_liveness(&mut self, now: SimTime) -> Option<GuardViolation> {
        (**self).check_liveness(now)
    }

    #[inline]
    fn on_tx_begin(&mut self) {
        (**self).on_tx_begin()
    }

    #[inline]
    fn check_tx_end(&mut self, now: SimTime, medium_active: u64) -> Option<GuardViolation> {
        (**self).check_tx_end(now, medium_active)
    }

    #[inline]
    fn check_airtime(
        &mut self,
        end_us: u64,
        busy_us: u64,
        capacity_us: u64,
    ) -> Option<GuardViolation> {
        (**self).check_airtime(end_us, busy_us, capacity_us)
    }
}

/// The default guard: a zero-sized type that checks nothing. All hooks
/// compile away, so an unguarded run is bit-identical to a pre-guard
/// build.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoopGuard;

impl SimGuard for NoopGuard {
    #[inline]
    fn enabled(&self) -> bool {
        false
    }

    #[inline]
    fn check_stall(&mut self, _now: SimTime, _same_time_streak: u64) -> Option<GuardViolation> {
        None
    }

    #[inline]
    fn on_burst_start(&mut self, _now: SimTime, _node: u32) {}

    #[inline]
    fn on_burst_end(&mut self, _node: u32) {}

    #[inline]
    fn check_liveness(&mut self, _now: SimTime) -> Option<GuardViolation> {
        None
    }

    #[inline]
    fn on_tx_begin(&mut self) {}

    #[inline]
    fn check_tx_end(&mut self, _now: SimTime, _medium_active: u64) -> Option<GuardViolation> {
        None
    }

    #[inline]
    fn check_airtime(
        &mut self,
        _end_us: u64,
        _busy_us: u64,
        _capacity_us: u64,
    ) -> Option<GuardViolation> {
        None
    }
}

/// One tracked burst: when it started and whether it was already
/// reported overdue (each burst is reported at most once).
#[derive(Debug, Clone, Copy)]
struct BurstWatch {
    started: SimTime,
    reported: bool,
}

/// The real guard: tracks per-node burst liveness and transmission
/// conservation against the bounds in its [`GuardConfig`].
///
/// Draws no randomness and mutates nothing outside itself, so enabling
/// it never changes simulation results — only whether violations are
/// *reported*.
#[derive(Debug, Clone, Default)]
pub struct RuntimeGuard {
    config: GuardConfig,
    bursts: Vec<Option<BurstWatch>>,
    tx_begun: u64,
    tx_ended: u64,
    summary: GuardSummary,
}

impl RuntimeGuard {
    /// A guard with the given bounds.
    pub fn new(config: GuardConfig) -> Self {
        RuntimeGuard {
            config,
            ..RuntimeGuard::default()
        }
    }

    /// The bounds this guard enforces.
    pub fn config(&self) -> &GuardConfig {
        &self.config
    }

    /// Violation counts accumulated so far.
    pub fn summary(&self) -> GuardSummary {
        self.summary
    }

    fn watch_mut(&mut self, node: u32) -> &mut Option<BurstWatch> {
        let index = node as usize;
        if self.bursts.len() <= index {
            self.bursts.resize(index + 1, None);
        }
        &mut self.bursts[index]
    }
}

impl SimGuard for RuntimeGuard {
    fn check_stall(&mut self, now: SimTime, same_time_streak: u64) -> Option<GuardViolation> {
        if same_time_streak < self.config.stall_dequeue_budget {
            return None;
        }
        self.summary.stalls += 1;
        Some(GuardViolation::StallDetected {
            t_us: now.as_micros(),
            dequeues: same_time_streak,
        })
    }

    fn on_burst_start(&mut self, now: SimTime, node: u32) {
        let watch = self.watch_mut(node);
        // A node's bursts are sequential: a fresh start while one is
        // tracked refreshes the deadline (the client merged the work).
        *watch = Some(BurstWatch {
            started: now,
            reported: false,
        });
    }

    fn on_burst_end(&mut self, node: u32) {
        *self.watch_mut(node) = None;
    }

    fn check_liveness(&mut self, now: SimTime) -> Option<GuardViolation> {
        let timeout = self.config.burst_timeout?;
        for (node, slot) in self.bursts.iter_mut().enumerate() {
            if let Some(watch) = slot {
                if !watch.reported && now.saturating_since(watch.started) > timeout {
                    watch.reported = true;
                    self.summary.liveness += 1;
                    return Some(GuardViolation::BurstOverdue {
                        t_us: now.as_micros(),
                        node: node as u32,
                        started_us: watch.started.as_micros(),
                    });
                }
            }
        }
        None
    }

    fn on_tx_begin(&mut self) {
        self.tx_begun += 1;
    }

    fn check_tx_end(&mut self, now: SimTime, medium_active: u64) -> Option<GuardViolation> {
        let expected = self.tx_begun.saturating_sub(self.tx_ended);
        self.tx_ended = (self.tx_ended + 1).min(self.tx_begun);
        if !self.config.conservation || expected == medium_active {
            return None;
        }
        self.summary.conservation += 1;
        // Re-sync with the slab so one mismatch does not cascade into a
        // report per subsequent frame. The transmission being ended is
        // already accounted above.
        self.tx_begun = self.tx_ended + medium_active.saturating_sub(1);
        Some(GuardViolation::ConservationBroken {
            t_us: now.as_micros(),
            invariant: "active_transmissions",
            expected,
            actual: medium_active,
        })
    }

    fn check_airtime(
        &mut self,
        end_us: u64,
        busy_us: u64,
        capacity_us: u64,
    ) -> Option<GuardViolation> {
        if !self.config.conservation || busy_us <= capacity_us {
            return None;
        }
        self.summary.conservation += 1;
        Some(GuardViolation::ConservationBroken {
            t_us: end_us,
            invariant: "airtime_accounting",
            expected: capacity_us,
            actual: busy_us,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_guard_is_zero_sized_and_disabled() {
        assert_eq!(std::mem::size_of::<NoopGuard>(), 0);
        let mut g = NoopGuard;
        assert!(!g.enabled());
        assert!(g.check_stall(SimTime::ZERO, u64::MAX).is_none());
        g.on_burst_start(SimTime::ZERO, 0);
        assert!(g.check_liveness(SimTime::from_secs(1_000)).is_none());
        g.on_tx_begin();
        assert!(g.check_tx_end(SimTime::ZERO, 99).is_none());
        assert!(g.check_airtime(1, 2, 1).is_none());
    }

    #[test]
    fn stall_fires_exactly_at_the_budget() {
        let mut g = RuntimeGuard::new(GuardConfig {
            stall_dequeue_budget: 10,
            ..GuardConfig::default()
        });
        let t = SimTime::from_millis(3);
        assert!(g.check_stall(t, 9).is_none());
        let v = g.check_stall(t, 10).expect("budget crossed");
        assert_eq!(
            v,
            GuardViolation::StallDetected {
                t_us: 3_000,
                dequeues: 10
            }
        );
        assert_eq!(v.kind(), "guard_stall");
        assert_eq!(g.summary().stalls, 1);
    }

    #[test]
    fn liveness_reports_an_overdue_burst_once() {
        let mut g = RuntimeGuard::new(GuardConfig {
            burst_timeout: Some(SimDuration::from_millis(100)),
            ..GuardConfig::default()
        });
        g.on_burst_start(SimTime::from_millis(10), 1);
        assert!(g.check_liveness(SimTime::from_millis(50)).is_none());
        let v = g
            .check_liveness(SimTime::from_millis(200))
            .expect("overdue");
        assert_eq!(
            v,
            GuardViolation::BurstOverdue {
                t_us: 200_000,
                node: 1,
                started_us: 10_000
            }
        );
        // Reported once, not per check.
        assert!(g.check_liveness(SimTime::from_millis(300)).is_none());
        assert_eq!(g.summary().liveness, 1);
    }

    #[test]
    fn completed_bursts_are_not_overdue() {
        let mut g = RuntimeGuard::new(GuardConfig {
            burst_timeout: Some(SimDuration::from_millis(100)),
            ..GuardConfig::default()
        });
        g.on_burst_start(SimTime::ZERO, 0);
        g.on_burst_end(0);
        assert!(g.check_liveness(SimTime::from_secs(10)).is_none());
        assert!(!g.summary().any());
    }

    #[test]
    fn liveness_disabled_without_timeout() {
        let mut g = RuntimeGuard::new(GuardConfig {
            burst_timeout: None,
            ..GuardConfig::default()
        });
        g.on_burst_start(SimTime::ZERO, 0);
        assert!(g.check_liveness(SimTime::from_secs(1_000)).is_none());
    }

    #[test]
    fn tx_conservation_balances_and_reports_mismatch() {
        let mut g = RuntimeGuard::new(GuardConfig::default());
        g.on_tx_begin();
        g.on_tx_begin();
        // Two begun, none ended: the slab should hold 2.
        assert!(g.check_tx_end(SimTime::ZERO, 2).is_none());
        // One begun minus one ended: the slab should hold 1, claims 5.
        let v = g
            .check_tx_end(SimTime::from_micros(7), 5)
            .expect("mismatch");
        assert!(matches!(
            v,
            GuardViolation::ConservationBroken {
                invariant: "active_transmissions",
                expected: 1,
                actual: 5,
                ..
            }
        ));
        assert_eq!(g.summary().conservation, 1);
        // Re-synced: the next end at the slab's new count is clean.
        assert!(g.check_tx_end(SimTime::from_micros(8), 4).is_none());
    }

    #[test]
    fn airtime_overflow_is_reported() {
        let mut g = RuntimeGuard::new(GuardConfig::default());
        assert!(g.check_airtime(1_000, 500, 1_000).is_none());
        let v = g.check_airtime(1_000, 2_000, 1_000).expect("overflow");
        assert_eq!(v.kind(), "guard_conservation");
        assert!(v.to_string().contains("airtime_accounting"), "{v}");
    }

    #[test]
    fn violations_display_their_context() {
        let v = GuardViolation::StallDetected {
            t_us: 42,
            dequeues: 7,
        };
        let text = v.to_string();
        assert!(text.contains("42"), "{text}");
        assert!(text.contains('7'), "{text}");
    }

    #[test]
    fn mut_ref_is_a_guard() {
        fn drive<G: SimGuard>(guard: &mut G) -> Option<GuardViolation> {
            guard.on_tx_begin();
            guard.check_stall(SimTime::ZERO, u64::MAX)
        }
        let mut g = RuntimeGuard::new(GuardConfig::default());
        assert!(drive(&mut &mut g).is_some());
        assert_eq!(g.summary().stalls, 1);
    }
}
