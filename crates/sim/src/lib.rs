//! # bicord-sim
//!
//! Deterministic discrete-event simulation engine underpinning the BiCord
//! reproduction.
//!
//! The engine is deliberately small and generic: it knows nothing about
//! radios. It provides
//!
//! * [`SimTime`] / [`SimDuration`] — microsecond-resolution virtual time,
//! * [`EventQueue`] — a stable priority queue of timestamped events,
//! * [`Engine`] — a run loop combining a clock with an event queue,
//! * [`rng`] — reproducible per-component random-number streams,
//! * [`dist`] — the handful of distributions the models need (exponential,
//!   normal, Poisson) implemented without external dependencies,
//! * [`obs`] — structured observability: the [`obs::EventSink`] trait,
//!   the [`obs::TraceEvent`] taxonomy, and the JSONL timeline writer,
//! * [`fault`] — deterministic fault injection ([`fault::FaultProfile`] /
//!   [`fault::FaultInjector`]) for robustness studies,
//! * [`guard`] — runtime invariant guard ([`guard::SimGuard`] /
//!   [`guard::RuntimeGuard`]) catching stalls, liveness and conservation
//!   violations, zero-cost when disabled via [`guard::NoopGuard`].
//!
//! # Example
//!
//! ```
//! use bicord_sim::{Engine, SimDuration, SimTime};
//!
//! let mut engine: Engine<&'static str> = Engine::new();
//! engine.schedule_in(SimDuration::from_millis(5), "hello");
//! engine.schedule_in(SimDuration::from_millis(1), "world");
//!
//! let (t1, e1) = engine.next_event().unwrap();
//! assert_eq!((t1, e1), (SimTime::from_millis(1), "world"));
//! let (t2, e2) = engine.next_event().unwrap();
//! assert_eq!((t2, e2), (SimTime::from_millis(5), "hello"));
//! assert!(engine.next_event().is_none());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dist;
pub mod engine;
pub mod event;
pub mod fault;
pub mod guard;
pub mod obs;
pub mod par;
pub mod rng;
pub mod time;

pub use engine::Engine;
pub use event::EventQueue;
pub use fault::{FaultInjector, FaultProfile};
pub use guard::{GuardConfig, GuardSummary, GuardViolation, NoopGuard, RuntimeGuard, SimGuard};
pub use obs::{EventSink, JsonlSink, NoopSink, TraceEvent, VecSink};
pub use rng::{derive_seed, stream_rng, SeedDomain};
pub use time::{SimDuration, SimTime};
