//! Structured observability for the discrete-event simulation.
//!
//! Every layer of the runtime — the engine loop, the coordinator, the
//! clients, the CSI detector and the white-space allocator — emits
//! [`TraceEvent`] records into an [`EventSink`]. Sinks are monomorphized
//! into the hot path: the default [`NoopSink`] is a zero-sized type whose
//! `emit` is empty, so an uninstrumented run compiles to exactly the code
//! it ran before the observability layer existed.
//!
//! The taxonomy is deliberately flat and primitive-typed (times in
//! microseconds, node indices as `u32`) so that this module needs no
//! knowledge of radios and every record serializes deterministically.
//!
//! # Sinks
//!
//! * [`NoopSink`] — the default; discards everything at compile time.
//! * [`VecSink`] — collects records in memory (tests, ad-hoc analysis).
//! * [`JsonlSink`] — writes a schema-versioned JSONL timeline
//!   (`bicord --trace run.jsonl`, bench `--trace`).
//! * [`Tee`] — duplicates records into two sinks.
//!
//! Emitters may guard expensive record construction with
//! [`EventSink::enabled`]; for cheap records they simply call
//! [`EventSink::emit`] and rely on monomorphization to delete the call for
//! [`NoopSink`].
//!
//! See `docs/OBSERVABILITY.md` for the event taxonomy and the JSONL
//! schema.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// The JSONL trace schema identifier written in every file header.
///
/// Bump the trailing number whenever a record's fields change meaning;
/// readers must check it via [`TraceHeader::parse`].
pub const TRACE_SCHEMA: &str = "bicord-trace/1";

/// One structured observability record.
///
/// All timestamps are virtual microseconds since the start of the run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TraceEvent {
    /// The engine dispatched one DES event (`kind` is the scenario's
    /// event-type label). High volume: sinks typically aggregate these.
    Dequeue {
        /// Dispatch time.
        t_us: u64,
        /// Event-type label.
        kind: &'static str,
    },
    /// The CSI detector classified one sample against its threshold.
    CsiClassified {
        /// Sample time.
        t_us: u64,
        /// Amplitude deviation of the sample.
        deviation: f64,
        /// `true` = high fluctuation (contributes to the continuity rule).
        high: bool,
    },
    /// The continuity rule fired: the Wi-Fi side believes a ZigBee node
    /// requested the channel.
    Detection {
        /// When the rule fired.
        t_us: u64,
        /// Earliest contributing high-fluctuation sample.
        window_start_us: u64,
        /// High samples in the window at firing time.
        highs: u32,
    },
    /// A ZigBee node handed a signaling control packet to its MAC.
    ChannelRequest {
        /// Hand-off time.
        t_us: u64,
        /// Node index (0 = primary).
        node: u32,
    },
    /// The coordinator granted a white space (a CTS-to-self follows).
    Reservation {
        /// Grant time.
        t_us: u64,
        /// White-space length in microseconds.
        ws_us: u64,
    },
    /// A CTS-to-self finished on air; its NAV opens a white space.
    WhiteSpace {
        /// CTS end time (= white-space start).
        t_us: u64,
        /// NAV duration in microseconds.
        nav_us: u64,
    },
    /// The allocator counted one more signaling round for the current
    /// burst (`N_round` in Sec. VI).
    NRound {
        /// Request time.
        t_us: u64,
        /// Rounds granted to the burst so far.
        rounds: u32,
    },
    /// The allocator updated its burst-length estimate (`T_estimation`).
    Estimate {
        /// Burst-end time at which the estimator ran.
        t_us: u64,
        /// New estimate in microseconds.
        estimate_us: u64,
        /// Rounds the finished burst took.
        rounds: u32,
        /// `"learning"` or `"converged"` after the update.
        phase: &'static str,
    },
    /// The allocator fell back to the learning phase (or probed the
    /// estimate downwards).
    ReEstimate {
        /// Trigger time.
        t_us: u64,
        /// `"expiry"`, `"growth"`, or `"shrink-probe"`.
        reason: &'static str,
    },
    /// A ZigBee node finished one application burst.
    BurstComplete {
        /// Completion time.
        t_us: u64,
        /// Node index.
        node: u32,
        /// Packets delivered.
        delivered: u32,
        /// Packets abandoned.
        failed: u32,
    },
    /// One ZigBee data packet was acknowledged end-to-end.
    PacketDelivered {
        /// Delivery time.
        t_us: u64,
        /// Node index.
        node: u32,
        /// Application sequence number.
        seq: u32,
    },
    /// A Table I/II signaling trial resolved.
    TrialResolved {
        /// Resolution time.
        t_us: u64,
        /// 1-based trial index.
        index: u32,
        /// Whether the detector caught the trial.
        detected: bool,
    },
    /// A device move invalidated part of the medium's link-budget cache
    /// (emitted per mobility step; absent in static scenarios).
    MediumCacheInvalidated {
        /// Invalidation time.
        t_us: u64,
        /// Raw id of the device that moved.
        device: u32,
        /// Shadowing realisations discarded with the cached budgets.
        dropped: u32,
    },
    /// End-of-run snapshot of the medium's cache effectiveness (emitted
    /// by mobility runs, where invalidation pressure is the question).
    MediumCacheStats {
        /// Snapshot time (the end of the run).
        t_us: u64,
        /// Link-budget cache hits.
        link_hits: u64,
        /// Link-budget cache misses.
        link_misses: u64,
        /// Band-overlap memo hits.
        band_hits: u64,
        /// Band-overlap memo misses.
        band_misses: u64,
    },
    /// End-of-run snapshot of the spatial culling grid's effectiveness
    /// (emitted alongside [`TraceEvent::MediumCacheStats`] by mobility
    /// runs; absent in static scenarios).
    MediumGridStats {
        /// Snapshot time (the end of the run).
        t_us: u64,
        /// Grid-accelerated medium queries answered.
        queries: u64,
        /// Non-empty grid cells visited across all queries.
        cells: u64,
        /// Transmissions gathered as candidates and evaluated.
        visited: u64,
        /// Transmissions skipped without evaluation (outside the 3×3
        /// cell window around the observer).
        culled: u64,
        /// Candidates gathered but rejected by the exact hearing-radius
        /// check (cell-resolution false positives).
        out_of_range: u64,
    },
    /// Fault injection suppressed a control packet's CSI signature: the
    /// classifier never sees the continuity samples it should have
    /// produced (absent in fault-free runs).
    FaultControlLost {
        /// Suppression time (the control packet's hand-off to the MAC).
        t_us: u64,
        /// Signaling node index.
        node: u32,
    },
    /// Fault injection lost a CTS-to-self before it reached contending
    /// stations: the "reserved" white space still sees Wi-Fi contention.
    FaultCtsLost {
        /// CTS end time (= the unprotected white-space start).
        t_us: u64,
        /// NAV duration the contenders failed to honour, in microseconds.
        nav_us: u64,
    },
    /// Fault injection fabricated a ZigBee-like CSI disturbance on a
    /// quiet sample (a phantom channel request).
    FaultPhantomCsi {
        /// Sample time.
        t_us: u64,
    },
    /// Fault-driven device churn moved a device and invalidated its
    /// cached link budgets.
    FaultChurn {
        /// Churn-step time.
        t_us: u64,
        /// Raw id of the device that moved.
        device: u32,
        /// Shadowing realisations discarded with the cached budgets.
        dropped: u32,
    },
    /// A client exhausted one signaling round's control budget without an
    /// answer and backed off before re-signaling.
    SignalingBackoff {
        /// Back-off decision time.
        t_us: u64,
        /// Node index.
        node: u32,
        /// Consecutive unanswered rounds so far (including this one).
        failures: u32,
    },
    /// A client gave up on signaling after `k` consecutive unanswered
    /// rounds and fell back to plain CSMA for the rest of the burst.
    CsmaFallback {
        /// Fallback time.
        t_us: u64,
        /// Node index.
        node: u32,
        /// Consecutive unanswered rounds that triggered the fallback.
        failures: u32,
    },
    /// The allocator detected inconsistent `N_round` accounting, aborted
    /// the white-space schedule and re-entered the learning phase.
    LearningAbort {
        /// Abort time.
        t_us: u64,
        /// Rounds the suspicious burst had accumulated.
        rounds: u32,
    },
    /// The runtime guard detected a livelock: the run dequeued `dequeues`
    /// consecutive events without simulated time advancing. Fatal — the
    /// run aborts right after emitting this record.
    GuardStall {
        /// Virtual time the clock is stuck at.
        t_us: u64,
        /// Consecutive same-instant dequeues observed.
        dequeues: u64,
    },
    /// The runtime guard found a burst that exceeded its liveness bound
    /// without completing or aborting (reported once per burst).
    GuardLiveness {
        /// Time of the check.
        t_us: u64,
        /// Node whose burst is overdue.
        node: u32,
        /// When the overdue burst started.
        started_us: u64,
    },
    /// The runtime guard found a conservation invariant out of balance
    /// (transmission accounting vs. the medium slab, or airtime vs.
    /// window capacity).
    GuardConservation {
        /// Time of the check.
        t_us: u64,
        /// Which invariant broke (`"active_transmissions"`,
        /// `"airtime_accounting"`).
        invariant: &'static str,
        /// The value the invariant predicts.
        expected: u64,
        /// The value actually observed.
        actual: u64,
    },
}

impl TraceEvent {
    /// Stable short name of the record kind (used as the JSONL `ev` field
    /// and as the counter key in metric registries).
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::Dequeue { .. } => "dequeue",
            TraceEvent::CsiClassified { .. } => "csi_classified",
            TraceEvent::Detection { .. } => "detection",
            TraceEvent::ChannelRequest { .. } => "channel_request",
            TraceEvent::Reservation { .. } => "reservation",
            TraceEvent::WhiteSpace { .. } => "white_space",
            TraceEvent::NRound { .. } => "n_round",
            TraceEvent::Estimate { .. } => "estimate",
            TraceEvent::ReEstimate { .. } => "re_estimate",
            TraceEvent::BurstComplete { .. } => "burst_complete",
            TraceEvent::PacketDelivered { .. } => "packet_delivered",
            TraceEvent::TrialResolved { .. } => "trial_resolved",
            TraceEvent::MediumCacheInvalidated { .. } => "medium_cache_invalidated",
            TraceEvent::MediumCacheStats { .. } => "medium_cache_stats",
            TraceEvent::MediumGridStats { .. } => "medium_grid_stats",
            TraceEvent::FaultControlLost { .. } => "fault_control_lost",
            TraceEvent::FaultCtsLost { .. } => "fault_cts_lost",
            TraceEvent::FaultPhantomCsi { .. } => "fault_phantom_csi",
            TraceEvent::FaultChurn { .. } => "fault_churn",
            TraceEvent::SignalingBackoff { .. } => "signaling_backoff",
            TraceEvent::CsmaFallback { .. } => "csma_fallback",
            TraceEvent::LearningAbort { .. } => "learning_abort",
            TraceEvent::GuardStall { .. } => "guard_stall",
            TraceEvent::GuardLiveness { .. } => "guard_liveness",
            TraceEvent::GuardConservation { .. } => "guard_conservation",
        }
    }

    /// The record's virtual timestamp in microseconds.
    pub fn time_us(&self) -> u64 {
        match *self {
            TraceEvent::Dequeue { t_us, .. }
            | TraceEvent::CsiClassified { t_us, .. }
            | TraceEvent::Detection { t_us, .. }
            | TraceEvent::ChannelRequest { t_us, .. }
            | TraceEvent::Reservation { t_us, .. }
            | TraceEvent::WhiteSpace { t_us, .. }
            | TraceEvent::NRound { t_us, .. }
            | TraceEvent::Estimate { t_us, .. }
            | TraceEvent::ReEstimate { t_us, .. }
            | TraceEvent::BurstComplete { t_us, .. }
            | TraceEvent::PacketDelivered { t_us, .. }
            | TraceEvent::TrialResolved { t_us, .. }
            | TraceEvent::MediumCacheInvalidated { t_us, .. }
            | TraceEvent::MediumCacheStats { t_us, .. }
            | TraceEvent::MediumGridStats { t_us, .. }
            | TraceEvent::FaultControlLost { t_us, .. }
            | TraceEvent::FaultCtsLost { t_us, .. }
            | TraceEvent::FaultPhantomCsi { t_us }
            | TraceEvent::FaultChurn { t_us, .. }
            | TraceEvent::SignalingBackoff { t_us, .. }
            | TraceEvent::CsmaFallback { t_us, .. }
            | TraceEvent::LearningAbort { t_us, .. }
            | TraceEvent::GuardStall { t_us, .. }
            | TraceEvent::GuardLiveness { t_us, .. }
            | TraceEvent::GuardConservation { t_us, .. } => t_us,
        }
    }

    /// Serializes the record as one deterministic JSON line (no trailing
    /// newline). Field order is fixed; floats use Rust's shortest
    /// round-trip formatting.
    pub fn write_jsonl(&self, out: &mut String) {
        let _ = write!(
            out,
            "{{\"t_us\":{},\"ev\":\"{}\"",
            self.time_us(),
            self.kind()
        );
        match *self {
            TraceEvent::Dequeue { kind, .. } => {
                let _ = write!(out, ",\"kind\":\"{kind}\"");
            }
            TraceEvent::CsiClassified {
                deviation, high, ..
            } => {
                let _ = write!(out, ",\"deviation\":{deviation},\"high\":{high}");
            }
            TraceEvent::Detection {
                window_start_us,
                highs,
                ..
            } => {
                let _ = write!(
                    out,
                    ",\"window_start_us\":{window_start_us},\"highs\":{highs}"
                );
            }
            TraceEvent::ChannelRequest { node, .. } => {
                let _ = write!(out, ",\"node\":{node}");
            }
            TraceEvent::Reservation { ws_us, .. } => {
                let _ = write!(out, ",\"ws_us\":{ws_us}");
            }
            TraceEvent::WhiteSpace { nav_us, .. } => {
                let _ = write!(out, ",\"nav_us\":{nav_us}");
            }
            TraceEvent::NRound { rounds, .. } => {
                let _ = write!(out, ",\"rounds\":{rounds}");
            }
            TraceEvent::Estimate {
                estimate_us,
                rounds,
                phase,
                ..
            } => {
                let _ = write!(
                    out,
                    ",\"estimate_us\":{estimate_us},\"rounds\":{rounds},\"phase\":\"{phase}\""
                );
            }
            TraceEvent::ReEstimate { reason, .. } => {
                let _ = write!(out, ",\"reason\":\"{reason}\"");
            }
            TraceEvent::BurstComplete {
                node,
                delivered,
                failed,
                ..
            } => {
                let _ = write!(
                    out,
                    ",\"node\":{node},\"delivered\":{delivered},\"failed\":{failed}"
                );
            }
            TraceEvent::PacketDelivered { node, seq, .. } => {
                let _ = write!(out, ",\"node\":{node},\"seq\":{seq}");
            }
            TraceEvent::TrialResolved {
                index, detected, ..
            } => {
                let _ = write!(out, ",\"index\":{index},\"detected\":{detected}");
            }
            TraceEvent::MediumCacheInvalidated {
                device, dropped, ..
            } => {
                let _ = write!(out, ",\"device\":{device},\"dropped\":{dropped}");
            }
            TraceEvent::MediumCacheStats {
                link_hits,
                link_misses,
                band_hits,
                band_misses,
                ..
            } => {
                let _ = write!(
                    out,
                    ",\"link_hits\":{link_hits},\"link_misses\":{link_misses},\
                     \"band_hits\":{band_hits},\"band_misses\":{band_misses}"
                );
            }
            TraceEvent::MediumGridStats {
                queries,
                cells,
                visited,
                culled,
                out_of_range,
                ..
            } => {
                let _ = write!(
                    out,
                    ",\"queries\":{queries},\"cells\":{cells},\"visited\":{visited},\
                     \"culled\":{culled},\"out_of_range\":{out_of_range}"
                );
            }
            TraceEvent::FaultControlLost { node, .. } => {
                let _ = write!(out, ",\"node\":{node}");
            }
            TraceEvent::FaultCtsLost { nav_us, .. } => {
                let _ = write!(out, ",\"nav_us\":{nav_us}");
            }
            TraceEvent::FaultPhantomCsi { .. } => {}
            TraceEvent::FaultChurn {
                device, dropped, ..
            } => {
                let _ = write!(out, ",\"device\":{device},\"dropped\":{dropped}");
            }
            TraceEvent::SignalingBackoff { node, failures, .. }
            | TraceEvent::CsmaFallback { node, failures, .. } => {
                let _ = write!(out, ",\"node\":{node},\"failures\":{failures}");
            }
            TraceEvent::LearningAbort { rounds, .. } => {
                let _ = write!(out, ",\"rounds\":{rounds}");
            }
            TraceEvent::GuardStall { dequeues, .. } => {
                let _ = write!(out, ",\"dequeues\":{dequeues}");
            }
            TraceEvent::GuardLiveness {
                node, started_us, ..
            } => {
                let _ = write!(out, ",\"node\":{node},\"started_us\":{started_us}");
            }
            TraceEvent::GuardConservation {
                invariant,
                expected,
                actual,
                ..
            } => {
                let _ = write!(
                    out,
                    ",\"invariant\":\"{invariant}\",\"expected\":{expected},\"actual\":{actual}"
                );
            }
        }
        out.push('}');
    }
}

/// A consumer of [`TraceEvent`] records.
///
/// Implementations are monomorphized into the simulation hot path; keep
/// `emit` cheap. Emitters constructing *expensive* records should guard
/// with [`EventSink::enabled`]; cheap records can be emitted
/// unconditionally and rely on the optimizer deleting the dead
/// construction for [`NoopSink`].
pub trait EventSink {
    /// `false` for sinks that discard everything — lets emitters skip
    /// record construction entirely.
    #[inline]
    fn enabled(&self) -> bool {
        true
    }

    /// Consumes one record.
    fn emit(&mut self, event: &TraceEvent);
}

impl<S: EventSink + ?Sized> EventSink for &mut S {
    #[inline]
    fn enabled(&self) -> bool {
        (**self).enabled()
    }

    #[inline]
    fn emit(&mut self, event: &TraceEvent) {
        (**self).emit(event)
    }
}

/// The default sink: a zero-sized type that discards everything. With
/// `NoopSink` the instrumentation compiles away entirely (verified by the
/// `perf_smoke` overhead test).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoopSink;

impl EventSink for NoopSink {
    #[inline]
    fn enabled(&self) -> bool {
        false
    }

    #[inline]
    fn emit(&mut self, _event: &TraceEvent) {}
}

/// Collects records in memory; useful in tests and for ad-hoc analysis.
#[derive(Debug, Clone, Default)]
pub struct VecSink {
    /// The records received, in emission order.
    pub events: Vec<TraceEvent>,
}

impl VecSink {
    /// An empty sink.
    pub fn new() -> Self {
        VecSink::default()
    }

    /// Records of one kind, in order.
    pub fn of_kind(&self, kind: &str) -> Vec<TraceEvent> {
        self.events
            .iter()
            .filter(|e| e.kind() == kind)
            .copied()
            .collect()
    }
}

impl EventSink for VecSink {
    fn emit(&mut self, event: &TraceEvent) {
        self.events.push(*event);
    }
}

/// Duplicates every record into two sinks (e.g. a [`JsonlSink`] timeline
/// plus a counting registry).
#[derive(Debug, Default)]
pub struct Tee<A, B>(pub A, pub B);

impl<A: EventSink, B: EventSink> EventSink for Tee<A, B> {
    #[inline]
    fn enabled(&self) -> bool {
        self.0.enabled() || self.1.enabled()
    }

    #[inline]
    fn emit(&mut self, event: &TraceEvent) {
        if self.0.enabled() {
            self.0.emit(event);
        }
        if self.1.enabled() {
            self.1.emit(event);
        }
    }
}

/// The self-describing first line of a JSONL trace file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceHeader {
    /// Schema identifier (must equal [`TRACE_SCHEMA`] for this version).
    pub schema: String,
    /// Master seed of the run.
    pub seed: u64,
    /// Coordination-mode label (`"bicord"`, `"ecc"`, ...).
    pub mode: String,
    /// Virtual run length in microseconds.
    pub duration_us: u64,
}

impl TraceHeader {
    /// A version-1 header for a run.
    pub fn new(seed: u64, mode: &str, duration_us: u64) -> Self {
        TraceHeader {
            schema: TRACE_SCHEMA.to_string(),
            seed,
            mode: mode.to_string(),
            duration_us,
        }
    }

    /// Serializes the header as one JSON line (no trailing newline).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"schema\":\"{}\",\"seed\":{},\"mode\":\"{}\",\"duration_us\":{}}}",
            self.schema, self.seed, self.mode, self.duration_us
        )
    }

    /// Parses a header line produced by [`TraceHeader::to_json`].
    ///
    /// Returns `None` for malformed lines or unknown schemas — callers
    /// must treat that as "do not interpret the rest of the file".
    pub fn parse(line: &str) -> Option<Self> {
        let schema = json_str_field(line, "schema")?;
        if schema != TRACE_SCHEMA {
            return None;
        }
        Some(TraceHeader {
            schema,
            seed: json_u64_field(line, "seed")?,
            mode: json_str_field(line, "mode")?,
            duration_us: json_u64_field(line, "duration_us")?,
        })
    }
}

/// Extracts a `"key":"value"` string field from a flat JSON line. Values
/// containing escapes are not supported (the writer never emits any).
fn json_str_field(line: &str, key: &str) -> Option<String> {
    let marker = format!("\"{key}\":\"");
    let start = line.find(&marker)? + marker.len();
    let end = line[start..].find('"')? + start;
    Some(line[start..end].to_string())
}

/// Extracts a `"key":123` integer field from a flat JSON line.
fn json_u64_field(line: &str, key: &str) -> Option<u64> {
    let marker = format!("\"{key}\":");
    let start = line.find(&marker)? + marker.len();
    let digits: String = line[start..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect();
    digits.parse().ok()
}

/// Writes a deterministic, schema-versioned JSONL timeline of one run.
///
/// Line 1 is the [`TraceHeader`]; every further line is one
/// [`TraceEvent`]. [`TraceEvent::Dequeue`] records are high-volume, so by
/// default they are *aggregated* into per-kind counts reported in the
/// summary trailer instead of being written individually; enable
/// [`JsonlSink::include_dequeues`] for the full stream. The final line is
/// a summary object (`{"summary":true,...}`).
///
/// Output depends only on the emitted records, which for a seeded run
/// depend only on the configuration — never on wall clock, thread count,
/// or environment.
#[derive(Debug)]
pub struct JsonlSink {
    path: PathBuf,
    out: io::BufWriter<std::fs::File>,
    line: String,
    include_dequeues: bool,
    events_written: u64,
    dequeue_counts: BTreeMap<&'static str, u64>,
    error: Option<io::Error>,
}

impl JsonlSink {
    /// Creates `path` (truncating) and writes the header line.
    pub fn create(path: impl AsRef<Path>, header: &TraceHeader) -> io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        let file = std::fs::File::create(&path)?;
        let mut out = io::BufWriter::new(file);
        out.write_all(header.to_json().as_bytes())?;
        out.write_all(b"\n")?;
        Ok(JsonlSink {
            path,
            out,
            line: String::with_capacity(128),
            include_dequeues: false,
            events_written: 0,
            dequeue_counts: BTreeMap::new(),
            error: None,
        })
    }

    /// Also writes every individual [`TraceEvent::Dequeue`] record
    /// (large files; off by default).
    pub fn include_dequeues(mut self, yes: bool) -> Self {
        self.include_dequeues = yes;
        self
    }

    /// The file being written.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Records written so far (excluding header and summary).
    pub fn events_written(&self) -> u64 {
        self.events_written
    }

    /// Writes the summary trailer and flushes. Returns the total record
    /// count, or the first I/O error encountered at any point.
    pub fn finish(mut self) -> io::Result<u64> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        let mut trailer = String::from("{\"summary\":true");
        let _ = write!(trailer, ",\"events\":{}", self.events_written);
        trailer.push_str(",\"dequeues\":{");
        for (i, (kind, n)) in self.dequeue_counts.iter().enumerate() {
            if i > 0 {
                trailer.push(',');
            }
            let _ = write!(trailer, "\"{kind}\":{n}");
        }
        trailer.push_str("}}");
        self.out.write_all(trailer.as_bytes())?;
        self.out.write_all(b"\n")?;
        self.out.flush()?;
        Ok(self.events_written)
    }
}

impl EventSink for JsonlSink {
    fn emit(&mut self, event: &TraceEvent) {
        if self.error.is_some() {
            return;
        }
        if let TraceEvent::Dequeue { kind, .. } = event {
            *self.dequeue_counts.entry(kind).or_insert(0) += 1;
            if !self.include_dequeues {
                return;
            }
        }
        self.line.clear();
        event.write_jsonl(&mut self.line);
        self.line.push('\n');
        if let Err(e) = self.out.write_all(self.line.as_bytes()) {
            self.error = Some(e);
            return;
        }
        self.events_written += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_sink_is_zero_sized_and_disabled() {
        assert_eq!(std::mem::size_of::<NoopSink>(), 0);
        assert!(!NoopSink.enabled());
        // Emitting into it is a no-op (must not panic, must stay ZST).
        let mut s = NoopSink;
        s.emit(&TraceEvent::Reservation { t_us: 1, ws_us: 2 });
    }

    #[test]
    fn vec_sink_collects_in_order() {
        let mut s = VecSink::new();
        s.emit(&TraceEvent::NRound { t_us: 1, rounds: 1 });
        s.emit(&TraceEvent::Reservation {
            t_us: 2,
            ws_us: 30_000,
        });
        s.emit(&TraceEvent::NRound { t_us: 3, rounds: 2 });
        assert_eq!(s.events.len(), 3);
        assert_eq!(s.of_kind("n_round").len(), 2);
        assert_eq!(s.events[1].time_us(), 2);
    }

    #[test]
    fn mut_ref_is_a_sink() {
        fn takes_sink<S: EventSink>(sink: &mut S) {
            sink.emit(&TraceEvent::Dequeue { t_us: 0, kind: "x" });
        }
        let mut s = VecSink::new();
        takes_sink(&mut &mut s);
        assert_eq!(s.events.len(), 1);
    }

    #[test]
    fn tee_duplicates_and_respects_enabled() {
        let mut t = Tee(VecSink::new(), NoopSink);
        t.emit(&TraceEvent::Detection {
            t_us: 5,
            window_start_us: 1,
            highs: 2,
        });
        assert!(t.enabled());
        assert_eq!(t.0.events.len(), 1);
    }

    #[test]
    fn jsonl_serialization_is_stable() {
        let mut line = String::new();
        TraceEvent::Estimate {
            t_us: 1_500,
            estimate_us: 42_000,
            rounds: 3,
            phase: "learning",
        }
        .write_jsonl(&mut line);
        assert_eq!(
            line,
            "{\"t_us\":1500,\"ev\":\"estimate\",\"estimate_us\":42000,\
             \"rounds\":3,\"phase\":\"learning\"}"
        );
        line.clear();
        TraceEvent::CsiClassified {
            t_us: 7,
            deviation: 0.25,
            high: false,
        }
        .write_jsonl(&mut line);
        assert_eq!(
            line,
            "{\"t_us\":7,\"ev\":\"csi_classified\",\"deviation\":0.25,\"high\":false}"
        );
    }

    #[test]
    fn header_round_trips() {
        let h = TraceHeader::new(42, "bicord", 10_000_000);
        let parsed = TraceHeader::parse(&h.to_json()).expect("own output parses");
        assert_eq!(parsed, h);
    }

    #[test]
    fn header_rejects_unknown_schema() {
        let line = "{\"schema\":\"bicord-trace/999\",\"seed\":1,\"mode\":\"x\",\"duration_us\":5}";
        assert!(TraceHeader::parse(line).is_none());
        assert!(TraceHeader::parse("not json").is_none());
    }

    #[test]
    fn jsonl_sink_writes_header_events_and_summary() {
        let dir = std::env::temp_dir().join(format!("bicord-obs-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.jsonl");
        let header = TraceHeader::new(7, "bicord", 1_000_000);
        let mut sink = JsonlSink::create(&path, &header).unwrap();
        sink.emit(&TraceEvent::Dequeue {
            t_us: 1,
            kind: "Timer",
        });
        sink.emit(&TraceEvent::Dequeue {
            t_us: 2,
            kind: "Timer",
        });
        sink.emit(&TraceEvent::Reservation {
            t_us: 3,
            ws_us: 30_000,
        });
        let n = sink.finish().unwrap();
        assert_eq!(n, 1, "dequeues aggregate by default");
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(TraceHeader::parse(lines[0]).is_some());
        assert!(lines[1].contains("\"ev\":\"reservation\""));
        assert!(lines[2].contains("\"summary\":true"));
        assert!(lines[2].contains("\"Timer\":2"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn jsonl_sink_can_include_dequeues() {
        let dir = std::env::temp_dir().join(format!("bicord-obs-test2-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.jsonl");
        let mut sink = JsonlSink::create(&path, &TraceHeader::new(1, "x", 1))
            .unwrap()
            .include_dequeues(true);
        sink.emit(&TraceEvent::Dequeue {
            t_us: 1,
            kind: "Timer",
        });
        assert_eq!(sink.finish().unwrap(), 1);
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"ev\":\"dequeue\""));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn every_kind_serializes_with_its_kind_label() {
        let events = [
            TraceEvent::Dequeue { t_us: 0, kind: "k" },
            TraceEvent::CsiClassified {
                t_us: 0,
                deviation: 0.5,
                high: true,
            },
            TraceEvent::Detection {
                t_us: 0,
                window_start_us: 0,
                highs: 2,
            },
            TraceEvent::ChannelRequest { t_us: 0, node: 0 },
            TraceEvent::Reservation { t_us: 0, ws_us: 1 },
            TraceEvent::WhiteSpace { t_us: 0, nav_us: 1 },
            TraceEvent::NRound { t_us: 0, rounds: 1 },
            TraceEvent::Estimate {
                t_us: 0,
                estimate_us: 1,
                rounds: 1,
                phase: "learning",
            },
            TraceEvent::ReEstimate {
                t_us: 0,
                reason: "expiry",
            },
            TraceEvent::BurstComplete {
                t_us: 0,
                node: 0,
                delivered: 1,
                failed: 0,
            },
            TraceEvent::PacketDelivered {
                t_us: 0,
                node: 0,
                seq: 9,
            },
            TraceEvent::TrialResolved {
                t_us: 0,
                index: 1,
                detected: true,
            },
            TraceEvent::MediumCacheInvalidated {
                t_us: 0,
                device: 2,
                dropped: 3,
            },
            TraceEvent::MediumCacheStats {
                t_us: 0,
                link_hits: 4,
                link_misses: 1,
                band_hits: 9,
                band_misses: 2,
            },
            TraceEvent::MediumGridStats {
                t_us: 0,
                queries: 7,
                cells: 21,
                visited: 12,
                culled: 30,
                out_of_range: 2,
            },
            TraceEvent::FaultControlLost { t_us: 0, node: 1 },
            TraceEvent::FaultCtsLost { t_us: 0, nav_us: 5 },
            TraceEvent::FaultPhantomCsi { t_us: 0 },
            TraceEvent::FaultChurn {
                t_us: 0,
                device: 2,
                dropped: 1,
            },
            TraceEvent::SignalingBackoff {
                t_us: 0,
                node: 0,
                failures: 1,
            },
            TraceEvent::CsmaFallback {
                t_us: 0,
                node: 0,
                failures: 3,
            },
            TraceEvent::LearningAbort {
                t_us: 0,
                rounds: 40,
            },
            TraceEvent::GuardStall {
                t_us: 0,
                dequeues: 1_000_000,
            },
            TraceEvent::GuardLiveness {
                t_us: 0,
                node: 2,
                started_us: 0,
            },
            TraceEvent::GuardConservation {
                t_us: 0,
                invariant: "active_transmissions",
                expected: 1,
                actual: 2,
            },
        ];
        for e in &events {
            let mut line = String::new();
            e.write_jsonl(&mut line);
            assert!(line.contains(&format!("\"ev\":\"{}\"", e.kind())), "{line}");
        }
    }
}
