//! Exhaustive record-kind round-trip: every `bicord-trace/1` kind the
//! sinks can emit must be consumed by the analyzer's parser.
//!
//! The `sample_events()` match below is **exhaustive over
//! `TraceEvent`** on purpose: adding a new variant to
//! `bicord_sim::obs::TraceEvent` breaks this test's build with a
//! missing-match-arm error right here, and the fix (adding a sample)
//! then fails at runtime with the kind's name until
//! `bicord_analyze::trace::KNOWN_KINDS` (and the summarizer's routing)
//! learn the new kind too. Either way, the trace schema cannot grow
//! past the analyzer silently.

use bicord_analyze::trace::{TraceFile, KNOWN_KINDS};
use bicord_sim::obs::{TraceEvent, TraceHeader};

/// One representative sample of every `TraceEvent` variant.
fn sample_events() -> Vec<TraceEvent> {
    // One arm per variant; `match` has no wildcard so this function
    // stops compiling the moment a variant is added or renamed.
    fn sample(prototype: &TraceEvent) -> TraceEvent {
        match *prototype {
            TraceEvent::Dequeue { .. } => TraceEvent::Dequeue {
                t_us: 10,
                kind: "Timer",
            },
            TraceEvent::CsiClassified { .. } => TraceEvent::CsiClassified {
                t_us: 20,
                deviation: 0.25,
                high: true,
            },
            TraceEvent::Detection { .. } => TraceEvent::Detection {
                t_us: 30,
                window_start_us: 25,
                highs: 4,
            },
            TraceEvent::ChannelRequest { .. } => TraceEvent::ChannelRequest { t_us: 40, node: 0 },
            TraceEvent::Reservation { .. } => TraceEvent::Reservation {
                t_us: 50,
                ws_us: 30_000,
            },
            TraceEvent::WhiteSpace { .. } => TraceEvent::WhiteSpace {
                t_us: 60,
                nav_us: 28_000,
            },
            TraceEvent::NRound { .. } => TraceEvent::NRound {
                t_us: 70,
                rounds: 2,
            },
            TraceEvent::Estimate { .. } => TraceEvent::Estimate {
                t_us: 80,
                estimate_us: 42_000,
                rounds: 3,
                phase: "learning",
            },
            TraceEvent::ReEstimate { .. } => TraceEvent::ReEstimate {
                t_us: 90,
                reason: "shrink-probe",
            },
            TraceEvent::BurstComplete { .. } => TraceEvent::BurstComplete {
                t_us: 100,
                node: 1,
                delivered: 5,
                failed: 0,
            },
            TraceEvent::PacketDelivered { .. } => TraceEvent::PacketDelivered {
                t_us: 110,
                node: 1,
                seq: 7,
            },
            TraceEvent::TrialResolved { .. } => TraceEvent::TrialResolved {
                t_us: 120,
                index: 1,
                detected: true,
            },
            TraceEvent::MediumCacheInvalidated { .. } => TraceEvent::MediumCacheInvalidated {
                t_us: 130,
                device: 3,
                dropped: 12,
            },
            TraceEvent::MediumCacheStats { .. } => TraceEvent::MediumCacheStats {
                t_us: 140,
                link_hits: 100,
                link_misses: 10,
                band_hits: 50,
                band_misses: 5,
            },
            TraceEvent::MediumGridStats { .. } => TraceEvent::MediumGridStats {
                t_us: 150,
                queries: 1000,
                cells: 90,
                visited: 400,
                culled: 600,
                out_of_range: 20,
            },
            TraceEvent::FaultControlLost { .. } => {
                TraceEvent::FaultControlLost { t_us: 160, node: 0 }
            }
            TraceEvent::FaultCtsLost { .. } => TraceEvent::FaultCtsLost {
                t_us: 170,
                nav_us: 28_000,
            },
            TraceEvent::FaultPhantomCsi { .. } => TraceEvent::FaultPhantomCsi { t_us: 180 },
            TraceEvent::FaultChurn { .. } => TraceEvent::FaultChurn {
                t_us: 190,
                device: 2,
                dropped: 8,
            },
            TraceEvent::SignalingBackoff { .. } => TraceEvent::SignalingBackoff {
                t_us: 200,
                node: 1,
                failures: 2,
            },
            TraceEvent::CsmaFallback { .. } => TraceEvent::CsmaFallback {
                t_us: 210,
                node: 1,
                failures: 3,
            },
            TraceEvent::LearningAbort { .. } => TraceEvent::LearningAbort {
                t_us: 220,
                rounds: 9,
            },
            TraceEvent::GuardStall { .. } => TraceEvent::GuardStall {
                t_us: 230,
                dequeues: 100_000,
            },
            TraceEvent::GuardLiveness { .. } => TraceEvent::GuardLiveness {
                t_us: 240,
                node: 0,
                started_us: 1,
            },
            TraceEvent::GuardConservation { .. } => TraceEvent::GuardConservation {
                t_us: 250,
                invariant: "airtime_accounting",
                expected: 4,
                actual: 5,
            },
        }
    }
    // Seed the exhaustive constructor with one dummy per known kind by
    // pattern — the prototypes below only select match arms.
    let prototypes = [
        TraceEvent::Dequeue { t_us: 0, kind: "" },
        TraceEvent::CsiClassified {
            t_us: 0,
            deviation: 0.0,
            high: false,
        },
        TraceEvent::Detection {
            t_us: 0,
            window_start_us: 0,
            highs: 0,
        },
        TraceEvent::ChannelRequest { t_us: 0, node: 0 },
        TraceEvent::Reservation { t_us: 0, ws_us: 0 },
        TraceEvent::WhiteSpace { t_us: 0, nav_us: 0 },
        TraceEvent::NRound { t_us: 0, rounds: 0 },
        TraceEvent::Estimate {
            t_us: 0,
            estimate_us: 0,
            rounds: 0,
            phase: "",
        },
        TraceEvent::ReEstimate {
            t_us: 0,
            reason: "",
        },
        TraceEvent::BurstComplete {
            t_us: 0,
            node: 0,
            delivered: 0,
            failed: 0,
        },
        TraceEvent::PacketDelivered {
            t_us: 0,
            node: 0,
            seq: 0,
        },
        TraceEvent::TrialResolved {
            t_us: 0,
            index: 0,
            detected: false,
        },
        TraceEvent::MediumCacheInvalidated {
            t_us: 0,
            device: 0,
            dropped: 0,
        },
        TraceEvent::MediumCacheStats {
            t_us: 0,
            link_hits: 0,
            link_misses: 0,
            band_hits: 0,
            band_misses: 0,
        },
        TraceEvent::MediumGridStats {
            t_us: 0,
            queries: 0,
            cells: 0,
            visited: 0,
            culled: 0,
            out_of_range: 0,
        },
        TraceEvent::FaultControlLost { t_us: 0, node: 0 },
        TraceEvent::FaultCtsLost { t_us: 0, nav_us: 0 },
        TraceEvent::FaultPhantomCsi { t_us: 0 },
        TraceEvent::FaultChurn {
            t_us: 0,
            device: 0,
            dropped: 0,
        },
        TraceEvent::SignalingBackoff {
            t_us: 0,
            node: 0,
            failures: 0,
        },
        TraceEvent::CsmaFallback {
            t_us: 0,
            node: 0,
            failures: 0,
        },
        TraceEvent::LearningAbort { t_us: 0, rounds: 0 },
        TraceEvent::GuardStall {
            t_us: 0,
            dequeues: 0,
        },
        TraceEvent::GuardLiveness {
            t_us: 0,
            node: 0,
            started_us: 0,
        },
        TraceEvent::GuardConservation {
            t_us: 0,
            invariant: "",
            expected: 0,
            actual: 0,
        },
    ];
    prototypes.iter().map(sample).collect()
}

/// Serializes events exactly like `JsonlSink` does (one `write_jsonl`
/// line each) under a real header, and parses the result back.
fn round_trip(events: &[TraceEvent]) -> TraceFile {
    let mut text = TraceHeader::new(7, "bicord", 1_000_000).to_json();
    text.push('\n');
    for event in events {
        let mut line = String::new();
        event.write_jsonl(&mut line);
        text.push_str(&line);
        text.push('\n');
    }
    match TraceFile::parse(&text) {
        Ok(trace) => trace,
        Err(e) => panic!(
            "the analyzer failed to consume a kind the sinks emit: {e}\n\
             (fix bicord_analyze::trace::KNOWN_KINDS and the summarizer routing)"
        ),
    }
}

#[test]
fn every_emitted_kind_parses_back() {
    let events = sample_events();
    let trace = round_trip(&events);
    assert_eq!(trace.records.len(), events.len());
    for (event, record) in events.iter().zip(&trace.records) {
        assert_eq!(record.kind, event.kind(), "kind label drifted");
        assert_eq!(record.t_us, event.time_us(), "timestamp drifted");
    }
}

#[test]
fn sample_set_covers_known_kinds_exactly() {
    // The analyzer's closed world and the emitters' variant set must be
    // the same set, in the same taxonomy order.
    let emitted: Vec<&str> = sample_events().iter().map(|e| e.kind()).collect();
    assert_eq!(
        emitted, KNOWN_KINDS,
        "TraceEvent variants and bicord_analyze::trace::KNOWN_KINDS diverged"
    );
}

#[test]
fn every_kind_lands_in_a_summarizer_population() {
    let trace = round_trip(&sample_events());
    let populated: Vec<&str> = trace.populations().iter().map(|(k, _)| *k).collect();
    assert_eq!(
        populated, KNOWN_KINDS,
        "a parsed kind vanished from the population report"
    );
}
