//! End-to-end: a live traced simulation (real scenario wiring, real
//! `JsonlSink`) must flow through parse → analytics → render without a
//! synthetic fixture in between, and byte-identical traces must diff
//! clean.

use bicord_analyze::diff::diff_traces;
use bicord_analyze::summarize::{Analytics, SummarizeOptions};
use bicord_analyze::trace::TraceFile;
use bicord_scenario::config::SimConfig;
use bicord_scenario::sim::CoexistenceSim;
use bicord_sim::obs::{JsonlSink, TraceHeader};
use bicord_sim::SimDuration;

/// Runs one short traced simulation and parses the trace back.
fn traced_run(seed: u64, tag: &str) -> TraceFile {
    let dir = std::env::temp_dir().join(format!("bicord-analyze-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join(format!("seed{seed}-{tag}.jsonl"));
    let config = SimConfig::builder()
        .seed(seed)
        .duration(SimDuration::from_millis(800))
        .build()
        .expect("valid config");
    let header = TraceHeader::new(config.seed, "bicord", config.duration.as_micros());
    let mut sink = JsonlSink::create(&path, &header).expect("create trace");
    CoexistenceSim::with_sink(config, &mut sink)
        .expect("valid config")
        .run();
    sink.finish().expect("finish trace");
    let trace = TraceFile::read(&path).expect("the analyzer must consume a live trace");
    std::fs::remove_file(&path).ok();
    trace
}

#[test]
fn live_trace_summarizes_with_content() {
    let trace = traced_run(42, "summarize");
    assert!(trace.summary.is_some(), "sink wrote no summary trailer");
    let analytics = Analytics::compute(&trace, &SummarizeOptions::default());
    // The smoke-gate sections CI asserts on must be non-empty for a
    // plain traced run.
    for section in ["events", "bursts", "utilization"] {
        assert_eq!(
            analytics.section_nonempty(section),
            Some(true),
            "section {section} empty for a live run"
        );
    }
    let text = analytics.render_text(&trace);
    assert!(text.contains("event populations"), "{text}");
    // Deterministic render: computing twice gives identical bytes.
    assert_eq!(
        analytics.render_json(&trace),
        Analytics::compute(&trace, &SummarizeOptions::default()).render_json(&trace)
    );
}

#[test]
fn equal_seeds_diff_identical_and_unequal_seeds_differ() {
    let a = traced_run(42, "diff-a");
    let b = traced_run(42, "diff-b");
    let diff = diff_traces(&a, &b);
    assert!(
        diff.identical(),
        "seeds-equal runs must diff IDENTICAL:\n{}",
        diff.render_text("a", "b")
    );
    let c = traced_run(43, "diff-c");
    assert!(!diff_traces(&a, &c).identical(), "seed change went unseen");
}
