//! Argument parsing and dispatch for `bicord analyze`.
//!
//! ```text
//! bicord analyze summarize TRACE [--format text|json] [--bins N] [--assert S,..]
//! bicord analyze diff-trace A B [--format text|json]
//! bicord analyze diff-bench [CURRENT] [--baseline FILE] [--rules FILE]
//!                           [--threshold PCT] [--out FILE] [--bless]
//! ```
//!
//! Exit codes follow the repo convention: `0` pass/identical, `1`
//! differ/budget breach/failed `--assert`, `2` usage or I/O error.

use std::path::PathBuf;

use crate::bench::{
    blessable, default_rules, evaluate, parse_bench_file, parse_rules, BudgetRule,
    DEFAULT_THRESHOLD_PCT,
};
use crate::diff::diff_traces;
use crate::summarize::{Analytics, SummarizeOptions};
use crate::trace::TraceFile;

/// Output flavor of the reporting subcommands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Format {
    Text,
    Json,
}

impl Format {
    fn parse(s: &str) -> Result<Self, String> {
        match s {
            "text" => Ok(Format::Text),
            "json" => Ok(Format::Json),
            other => Err(format!("unknown --format '{other}' (use text or json)")),
        }
    }
}

/// The parsed `bicord analyze` invocation.
#[derive(Debug, Clone, PartialEq)]
enum Command {
    Summarize {
        trace: PathBuf,
        format: Format,
        bins: usize,
        asserts: Vec<String>,
    },
    DiffTrace {
        a: PathBuf,
        b: PathBuf,
        format: Format,
    },
    DiffBench {
        current: PathBuf,
        baseline: PathBuf,
        rules: Option<PathBuf>,
        threshold_pct: f64,
        out: Option<PathBuf>,
        bless: bool,
    },
}

/// Usage text (also the `--help` output).
fn usage() -> &'static str {
    "bicord analyze — trace analytics and perf-budget diffs

USAGE:
  bicord analyze summarize TRACE [OPTIONS]
  bicord analyze diff-trace A B [OPTIONS]
  bicord analyze diff-bench [CURRENT] [OPTIONS]

summarize — report burst waterfalls, white-space utilization,
allocator convergence and fault tallies of one JSONL trace:
  --format <text|json>  output flavor                           [text]
  --bins N              utilization timeline bins               [20]
  --assert S,S,...      exit 1 unless each named section is
                        non-empty (events, bursts, utilization,
                        convergence, faults)

diff-trace — structurally compare two traces of the same schema;
exit 0 when identical, 1 when they differ:
  --format <text|json>  output flavor                           [text]

diff-bench — compare a BENCH_results.json against a baseline under
per-metric budget rules; exit 0 within budget, 1 on breach:
  CURRENT               results file            [BENCH_results.json]
  --baseline FILE       baseline file  [scripts/bench_baseline.json]
  --rules FILE          JSON budget rules (docs/ANALYTICS.md)
  --threshold PCT       latency regression budget, percent      [25]
  --out FILE            also write a markdown report
  --bless               rewrite the baseline from CURRENT and exit

Replaces the retired `bench_compare` binary; `scripts/bench_compare.sh`
forwards here. See docs/ANALYTICS.md."
}

fn parse<I: Iterator<Item = String>>(mut args: I) -> Result<Command, String> {
    let sub = args.next().ok_or("help")?;
    if sub == "--help" || sub == "-h" || sub == "help" {
        return Err("help".to_string());
    }
    let mut positional: Vec<String> = Vec::new();
    let mut format = Format::Text;
    let mut bins = SummarizeOptions::default().bins;
    let mut asserts: Vec<String> = Vec::new();
    let mut baseline = PathBuf::from("scripts/bench_baseline.json");
    let mut rules = None;
    let mut threshold_pct = DEFAULT_THRESHOLD_PCT;
    let mut out = None;
    let mut bless = false;
    let mut args = args.peekable();
    while let Some(arg) = args.next() {
        let mut value = |name: &str| args.next().ok_or_else(|| format!("{name} wants a value"));
        match arg.as_str() {
            "--help" | "-h" => return Err("help".to_string()),
            "--format" => format = Format::parse(&value("--format")?)?,
            "--bins" => {
                bins = value("--bins")?
                    .parse()
                    .map_err(|_| "--bins wants a positive integer".to_string())?;
                if bins == 0 {
                    return Err("--bins wants a positive integer".to_string());
                }
            }
            "--assert" => {
                asserts.extend(
                    value("--assert")?
                        .split(',')
                        .filter(|s| !s.is_empty())
                        .map(str::to_string),
                );
            }
            "--baseline" => baseline = PathBuf::from(value("--baseline")?),
            "--rules" => rules = Some(PathBuf::from(value("--rules")?)),
            "--threshold" => {
                threshold_pct = value("--threshold")?
                    .parse()
                    .map_err(|_| "--threshold wants a number (percent)".to_string())?;
            }
            "--out" => out = Some(PathBuf::from(value("--out")?)),
            "--bless" => bless = true,
            other if other.starts_with("--") => {
                return Err(format!("unknown option '{other}'"));
            }
            other => positional.push(other.to_string()),
        }
    }
    match sub.as_str() {
        "summarize" => {
            let [trace] = positional.as_slice() else {
                return Err("summarize wants exactly one TRACE file".to_string());
            };
            Ok(Command::Summarize {
                trace: PathBuf::from(trace),
                format,
                bins,
                asserts,
            })
        }
        "diff-trace" => {
            let [a, b] = positional.as_slice() else {
                return Err("diff-trace wants exactly two trace files".to_string());
            };
            Ok(Command::DiffTrace {
                a: PathBuf::from(a),
                b: PathBuf::from(b),
                format,
            })
        }
        "diff-bench" => {
            let current = match positional.as_slice() {
                [] => PathBuf::from("BENCH_results.json"),
                [current] => PathBuf::from(current),
                _ => return Err("diff-bench wants at most one CURRENT file".to_string()),
            };
            Ok(Command::DiffBench {
                current,
                baseline,
                rules,
                threshold_pct,
                out,
                bless,
            })
        }
        other => Err(format!(
            "unknown analyze subcommand '{other}' (use summarize, diff-trace or diff-bench)"
        )),
    }
}

/// Runs `bicord analyze` with the arguments after the `analyze` word;
/// returns the process exit code.
pub fn run<I: Iterator<Item = String>>(args: I) -> i32 {
    let command = match parse(args) {
        Ok(c) => c,
        Err(e) if e == "help" => {
            println!("{}", usage());
            return 0;
        }
        Err(e) => {
            eprintln!("error: {e}\n\n{}", usage());
            return 2;
        }
    };
    match execute(&command) {
        Ok(code) => code,
        Err(e) => {
            eprintln!("error: {e}");
            2
        }
    }
}

fn execute(command: &Command) -> Result<i32, String> {
    match command {
        Command::Summarize {
            trace,
            format,
            bins,
            asserts,
        } => {
            let parsed = TraceFile::read(trace).map_err(|e| format!("{}: {e}", trace.display()))?;
            let analytics = Analytics::compute(&parsed, &SummarizeOptions { bins: *bins });
            match format {
                Format::Text => print!("{}", analytics.render_text(&parsed)),
                Format::Json => println!("{}", analytics.render_json(&parsed)),
            }
            let mut missing = Vec::new();
            for section in asserts {
                match analytics.section_nonempty(section) {
                    Some(true) => {}
                    Some(false) => missing.push(section.clone()),
                    None => {
                        return Err(format!(
                            "--assert: unknown section '{section}' (use events, bursts, \
                             utilization, convergence or faults)"
                        ));
                    }
                }
            }
            if !missing.is_empty() {
                eprintln!(
                    "summarize: ASSERT FAILED — empty section(s): {}",
                    missing.join(", ")
                );
                return Ok(1);
            }
            Ok(0)
        }
        Command::DiffTrace { a, b, format } => {
            let (ta, tb) = (
                TraceFile::read(a).map_err(|e| format!("{}: {e}", a.display()))?,
                TraceFile::read(b).map_err(|e| format!("{}: {e}", b.display()))?,
            );
            let diff = diff_traces(&ta, &tb);
            match format {
                Format::Text => print!(
                    "{}",
                    diff.render_text(&a.display().to_string(), &b.display().to_string())
                ),
                Format::Json => println!("{}", diff.render_json()),
            }
            Ok(if diff.identical() { 0 } else { 1 })
        }
        Command::DiffBench {
            current,
            baseline,
            rules,
            threshold_pct,
            out,
            bless,
        } => {
            let rules = load_rules(rules.as_deref(), *threshold_pct)?;
            let current_entries = parse_bench_file(
                &std::fs::read_to_string(current)
                    .map_err(|e| format!("{}: {e}", current.display()))?,
            );
            if *bless {
                let kept = blessable(&current_entries, &rules);
                if kept.is_empty() {
                    return Err(format!(
                        "refusing to bless: {} holds no entries gated by a relative rule",
                        current.display()
                    ));
                }
                let lines: Vec<&str> = kept.iter().map(|e| e.line.as_str()).collect();
                std::fs::write(baseline, format!("[\n{}\n]\n", lines.join(",\n")))
                    .map_err(|e| format!("{}: {e}", baseline.display()))?;
                eprintln!(
                    "diff-bench: blessed {} entr(ies) into {}",
                    lines.len(),
                    baseline.display()
                );
                return Ok(0);
            }
            let baseline_entries = parse_bench_file(
                &std::fs::read_to_string(baseline)
                    .map_err(|e| format!("{}: {e}", baseline.display()))?,
            );
            let report = evaluate(&baseline_entries, &current_entries, &rules, *threshold_pct);
            if report.rows.is_empty() {
                return Err(format!(
                    "refusing to judge an empty comparison: no metric of {} is gated by \
                     the active rules (wrong file, or a rules/baseline mismatch)",
                    current.display()
                ));
            }
            print!("{}", report.render_text());
            if let Some(out) = out {
                std::fs::write(out, report.render_markdown())
                    .map_err(|e| format!("{}: {e}", out.display()))?;
                eprintln!("diff-bench: wrote markdown report to {}", out.display());
            }
            Ok(if report.breaches().is_empty() { 0 } else { 1 })
        }
    }
}

fn load_rules(
    path: Option<&std::path::Path>,
    threshold_pct: f64,
) -> Result<Vec<BudgetRule>, String> {
    match path {
        None => Ok(default_rules(threshold_pct)),
        Some(path) => {
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
            parse_rules(&text).map_err(|e| format!("{}: {e}", path.display()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_of(words: &[&str]) -> Result<Command, String> {
        parse(words.iter().map(|s| s.to_string()))
    }

    #[test]
    fn summarize_defaults_and_options() {
        let c = parse_of(&["summarize", "trace.jsonl"]).unwrap();
        assert_eq!(
            c,
            Command::Summarize {
                trace: PathBuf::from("trace.jsonl"),
                format: Format::Text,
                bins: 20,
                asserts: vec![],
            }
        );
        let c = parse_of(&[
            "summarize",
            "t.jsonl",
            "--format",
            "json",
            "--bins",
            "8",
            "--assert",
            "bursts,utilization",
        ])
        .unwrap();
        match c {
            Command::Summarize {
                format,
                bins,
                asserts,
                ..
            } => {
                assert_eq!(format, Format::Json);
                assert_eq!(bins, 8);
                assert_eq!(asserts, vec!["bursts", "utilization"]);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn diff_trace_wants_two_files() {
        assert!(parse_of(&["diff-trace", "a.jsonl"]).is_err());
        let c = parse_of(&["diff-trace", "a.jsonl", "b.jsonl"]).unwrap();
        assert_eq!(
            c,
            Command::DiffTrace {
                a: PathBuf::from("a.jsonl"),
                b: PathBuf::from("b.jsonl"),
                format: Format::Text,
            }
        );
    }

    #[test]
    fn diff_bench_defaults_match_the_repo_layout() {
        let c = parse_of(&["diff-bench"]).unwrap();
        assert_eq!(
            c,
            Command::DiffBench {
                current: PathBuf::from("BENCH_results.json"),
                baseline: PathBuf::from("scripts/bench_baseline.json"),
                rules: None,
                threshold_pct: 25.0,
                out: None,
                bless: false,
            }
        );
        let c = parse_of(&[
            "diff-bench",
            "other.json",
            "--baseline",
            "base.json",
            "--threshold",
            "10",
            "--out",
            "report.md",
            "--bless",
        ])
        .unwrap();
        match c {
            Command::DiffBench {
                current,
                baseline,
                threshold_pct,
                out,
                bless,
                ..
            } => {
                assert_eq!(current, PathBuf::from("other.json"));
                assert_eq!(baseline, PathBuf::from("base.json"));
                assert_eq!(threshold_pct, 10.0);
                assert_eq!(out, Some(PathBuf::from("report.md")));
                assert!(bless);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn errors_are_usage_shaped() {
        assert_eq!(parse_of(&[]).unwrap_err(), "help");
        assert_eq!(parse_of(&["--help"]).unwrap_err(), "help");
        assert_eq!(parse_of(&["summarize", "--help"]).unwrap_err(), "help");
        assert!(parse_of(&["warp"]).unwrap_err().contains("warp"));
        assert!(parse_of(&["summarize"]).is_err());
        assert!(parse_of(&["summarize", "t", "--bins", "0"]).is_err());
        assert!(parse_of(&["summarize", "t", "--format", "xml"]).is_err());
        assert!(parse_of(&["diff-bench", "a", "b"]).is_err());
        assert!(parse_of(&["summarize", "t", "--wat"]).is_err());
    }
}
