//! # bicord-analyze — trace analytics and perf-budget diffs
//!
//! The offline analysis layer of the BiCord reproduction, surfaced as the
//! `bicord analyze` subcommand (see `docs/ANALYTICS.md`). Three modes:
//!
//! * **summarize** ([`summarize`]) — turn one `bicord-trace/1` JSONL
//!   timeline into per-burst latency waterfalls, a white-space
//!   utilization timeline, allocator-convergence stats and
//!   fault/fallback/guard tallies, as aligned text tables or one
//!   deterministic JSON document.
//! * **diff-trace** ([`diff`]) — structurally compare two traces of the
//!   same schema: which record populations appeared, vanished, or
//!   changed, keyed by kind and node.
//! * **diff-bench** ([`mod@bench`]) — compare two `BENCH_results.json` files
//!   under per-metric budget rules (latency regression percent,
//!   throughput floors, quarantine ceilings) with a pass/fail exit code;
//!   this is the CI `perf-budget` gate and the engine behind
//!   `scripts/bench_compare.sh`.
//!
//! Parsing is closed-world ([`trace::KNOWN_KINDS`]): a record kind the
//! analyzer does not know is a hard error naming the kind, so the
//! analytics can never silently rot as the trace schema grows. The
//! exhaustive round-trip test in `tests/record_kinds.rs` enforces the
//! same property at compile time against `bicord_sim::obs::TraceEvent`.
//!
//! Everything here is a pure function of its input files — no simulation
//! runs, no clocks, no randomness — so reports are byte-deterministic.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bench;
pub mod cli;
pub mod diff;
pub mod summarize;
pub mod trace;
