//! Turns a parsed trace into the `bicord analyze summarize` report:
//! per-burst latency waterfalls, a white-space utilization timeline,
//! allocator convergence, and fault/fallback/guard tallies.
//!
//! All analytics are pure functions of the [`TraceFile`], so the text and
//! JSON renderings are deterministic — two runs of the same seeded
//! simulation summarize to identical bytes.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use bicord_metrics::table::TextTable;

use crate::trace::{Record, TraceFile, Value};

/// The record kinds counted by the fault/fallback/guard section, in
/// report order.
const FAULT_KINDS: &[&str] = &[
    "fault_control_lost",
    "fault_cts_lost",
    "fault_phantom_csi",
    "fault_churn",
    "signaling_backoff",
    "csma_fallback",
    "learning_abort",
    "guard_stall",
    "guard_liveness",
    "guard_conservation",
];

/// The node-attributed kinds that can open a burst window (the span of a
/// burst is measured from the first of these after the previous
/// `burst_complete` to the completing record).
const BURST_OPENERS: &[&str] = &[
    "channel_request",
    "packet_delivered",
    "signaling_backoff",
    "csma_fallback",
];

/// Upper edges of the burst-span waterfall buckets, in microseconds.
/// The final bucket is open-ended.
const WATERFALL_EDGES_US: &[u64] = &[
    1_000, 2_000, 5_000, 10_000, 20_000, 50_000, 100_000, 200_000, 500_000, 1_000_000,
];

/// Tuning knobs of [`Analytics::compute`].
#[derive(Debug, Clone, Copy)]
pub struct SummarizeOptions {
    /// Bin count of the utilization timeline.
    pub bins: usize,
}

impl Default for SummarizeOptions {
    fn default() -> Self {
        SummarizeOptions { bins: 20 }
    }
}

/// Per-node burst tallies.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeBursts {
    /// Node index (0 = the primary ZigBee pair).
    pub node: u64,
    /// Completed bursts.
    pub bursts: usize,
    /// Packets delivered across all bursts.
    pub delivered: u64,
    /// Packets abandoned across all bursts.
    pub failed: u64,
    /// Mean burst span (first burst event to completion), microseconds.
    pub mean_span_us: f64,
    /// Longest burst span, microseconds.
    pub max_span_us: u64,
}

/// One bucket of the burst-span waterfall.
#[derive(Debug, Clone, PartialEq)]
pub struct WaterfallBucket {
    /// Human-readable bucket label (e.g. `"2-5 ms"`).
    pub label: String,
    /// Bursts whose span fell in this bucket.
    pub count: usize,
}

/// The white-space utilization timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct Utilization {
    /// Reserved fraction of each equal-width time bin, in `[0, 1]`.
    pub bins: Vec<f64>,
    /// Width of one bin, microseconds.
    pub bin_us: u64,
    /// `white_space` records seen.
    pub white_spaces: usize,
    /// Total NAV-reserved airtime, microseconds (overlaps merged per bin,
    /// summed raw here).
    pub reserved_us: u64,
    /// Reserved fraction of the whole run.
    pub fraction: f64,
}

/// Allocator convergence (`n_round` / `estimate` / `re_estimate`).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Convergence {
    /// `(t_us, estimate_us, rounds, phase)` per `estimate` record.
    pub estimates: Vec<(u64, u64, u64, String)>,
    /// `n_round` records seen.
    pub n_rounds: usize,
    /// Largest round count any burst reached.
    pub max_rounds: u64,
    /// `re_estimate` counts by reason, in first-seen order.
    pub re_estimates: Vec<(String, usize)>,
}

/// Everything `bicord analyze summarize` reports.
#[derive(Debug, Clone)]
pub struct Analytics {
    /// `(kind, count, first_t_us, last_t_us)` per kind present.
    pub populations: Vec<(String, usize, u64, u64)>,
    /// Per-node burst tallies, by node index.
    pub bursts: Vec<NodeBursts>,
    /// Burst-span histogram across all nodes.
    pub waterfall: Vec<WaterfallBucket>,
    /// White-space utilization timeline.
    pub utilization: Utilization,
    /// Allocator convergence.
    pub convergence: Convergence,
    /// `(kind, count)` for the fault/fallback/guard kinds present.
    pub faults: Vec<(String, usize)>,
    /// Span of the analyzed timeline, microseconds (header duration, or
    /// the last record's timestamp if it runs past the header).
    pub span_us: u64,
}

impl Analytics {
    /// Computes every section from a parsed trace.
    pub fn compute(trace: &TraceFile, options: &SummarizeOptions) -> Self {
        let span_us = trace
            .records
            .iter()
            .map(|r| r.t_us)
            .max()
            .unwrap_or(0)
            .max(trace.header.duration_us)
            .max(1);
        let (bursts, spans) = node_bursts(trace);
        Analytics {
            populations: populations(trace),
            bursts,
            waterfall: waterfall(&spans),
            utilization: utilization(trace, span_us, options.bins.max(1)),
            convergence: convergence(trace),
            faults: FAULT_KINDS
                .iter()
                .filter_map(|kind| {
                    let n = trace.of_kind(kind).count();
                    (n > 0).then(|| (kind.to_string(), n))
                })
                .collect(),
            span_us,
        }
    }

    /// Whether a named report section has content; used by the CI smoke
    /// gate (`--assert bursts,utilization`) so the analyzer can never
    /// silently rot against the live trace schema.
    ///
    /// Unknown section names return `false` (the caller reports them).
    pub fn section_nonempty(&self, section: &str) -> Option<bool> {
        match section {
            "events" => Some(!self.populations.is_empty()),
            "bursts" => Some(!self.bursts.is_empty()),
            "utilization" => Some(self.utilization.white_spaces > 0),
            "convergence" => Some(!self.convergence.estimates.is_empty()),
            "faults" => Some(!self.faults.is_empty()),
            _ => None,
        }
    }

    /// Renders the full text report.
    pub fn render_text(&self, trace: &TraceFile) -> String {
        let mut out = String::new();
        let h = &trace.header;
        let _ = writeln!(
            out,
            "trace: mode {}, seed {}, {:.1} s simulated, {} records",
            h.mode,
            h.seed,
            self.span_us as f64 / 1e6,
            trace.records.len(),
        );
        if let Some(s) = &trace.summary {
            let dequeues: u64 = s.dequeues.values().sum();
            let _ = writeln!(
                out,
                "engine: {dequeues} DES dequeues across {} kinds",
                s.dequeues.len()
            );
        }
        out.push('\n');

        let mut pop = TextTable::new(vec!["kind", "count", "first ms", "last ms"]);
        pop.title("event populations");
        for (kind, count, first, last) in &self.populations {
            pop.row(vec![
                kind.clone(),
                count.to_string(),
                format!("{:.1}", *first as f64 / 1e3),
                format!("{:.1}", *last as f64 / 1e3),
            ]);
        }
        let _ = writeln!(out, "{pop}");

        let mut bursts = TextTable::new(vec![
            "node",
            "bursts",
            "delivered",
            "failed",
            "mean span ms",
            "max span ms",
        ]);
        bursts.title("per-node bursts");
        for b in &self.bursts {
            bursts.row(vec![
                b.node.to_string(),
                b.bursts.to_string(),
                b.delivered.to_string(),
                b.failed.to_string(),
                format!("{:.1}", b.mean_span_us / 1e3),
                format!("{:.1}", b.max_span_us as f64 / 1e3),
            ]);
        }
        if bursts.is_empty() {
            out.push_str("per-node bursts: none recorded\n\n");
        } else {
            let _ = writeln!(out, "{bursts}");
        }

        let max_count = self.waterfall.iter().map(|b| b.count).max().unwrap_or(0);
        if max_count > 0 {
            out.push_str("burst latency waterfall (span = first burst event -> completion)\n");
            for bucket in &self.waterfall {
                let bar = "#".repeat((bucket.count * 40).div_ceil(max_count.max(1)));
                let _ = writeln!(out, "  {:>10}  {:>5}  {bar}", bucket.label, bucket.count);
            }
            out.push('\n');
        }

        let u = &self.utilization;
        let _ = writeln!(
            out,
            "white-space utilization timeline ({} bins of {:.1} ms)",
            u.bins.len(),
            u.bin_us as f64 / 1e3
        );
        let glyphs: &[u8] = b" .:-=+*#%@";
        let bar: String = u
            .bins
            .iter()
            .map(|f| {
                let idx = ((f * 10.0) as usize).min(glyphs.len() - 1);
                glyphs[idx] as char
            })
            .collect();
        let _ = writeln!(out, "  [{bar}]");
        let _ = writeln!(
            out,
            "  {} white spaces, {:.1} ms reserved ({:.1}% of run)\n",
            u.white_spaces,
            u.reserved_us as f64 / 1e3,
            u.fraction * 100.0
        );

        let c = &self.convergence;
        out.push_str("allocator convergence\n");
        if let (Some(first), Some(last)) = (c.estimates.first(), c.estimates.last()) {
            let _ = writeln!(
                out,
                "  estimates: {} (first {:.1} ms after {} rounds, last {:.1} ms, phase {})",
                c.estimates.len(),
                first.1 as f64 / 1e3,
                first.2,
                last.1 as f64 / 1e3,
                last.3
            );
        } else {
            out.push_str("  estimates: none recorded\n");
        }
        let _ = writeln!(
            out,
            "  n_round records: {}, max {} rounds/burst",
            c.n_rounds, c.max_rounds
        );
        if c.re_estimates.is_empty() {
            out.push_str("  re-estimates: none\n");
        } else {
            let list: Vec<String> = c
                .re_estimates
                .iter()
                .map(|(reason, n)| format!("{reason} {n}"))
                .collect();
            let _ = writeln!(out, "  re-estimates: {}", list.join(", "));
        }
        out.push('\n');

        if self.faults.is_empty() {
            out.push_str("faults, fallbacks & guards: none recorded\n");
        } else {
            let mut t = TextTable::new(vec!["kind", "count"]);
            t.title("faults, fallbacks & guards");
            for (kind, n) in &self.faults {
                t.row(vec![kind.clone(), n.to_string()]);
            }
            let _ = write!(out, "{t}");
        }
        out
    }

    /// Renders the report as one deterministic JSON document (for
    /// scripting; `bicord analyze summarize --format json`).
    pub fn render_json(&self, trace: &TraceFile) -> String {
        let mut out = String::from("{\"schema\":\"bicord-analyze/1\"");
        let h = &trace.header;
        let _ = write!(
            out,
            ",\"mode\":\"{}\",\"seed\":{},\"span_us\":{},\"records\":{}",
            h.mode,
            h.seed,
            self.span_us,
            trace.records.len()
        );
        out.push_str(",\"populations\":{");
        for (i, (kind, count, first, last)) in self.populations.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\"{kind}\":{{\"count\":{count},\"first_us\":{first},\"last_us\":{last}}}"
            );
        }
        out.push_str("},\"bursts\":[");
        for (i, b) in self.bursts.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"node\":{},\"bursts\":{},\"delivered\":{},\"failed\":{},\
                 \"mean_span_us\":{},\"max_span_us\":{}}}",
                b.node, b.bursts, b.delivered, b.failed, b.mean_span_us, b.max_span_us
            );
        }
        out.push_str("],\"waterfall\":[");
        for (i, bucket) in self.waterfall.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"bucket\":\"{}\",\"count\":{}}}",
                bucket.label, bucket.count
            );
        }
        let u = &self.utilization;
        out.push_str("],\"utilization\":{\"bins\":[");
        for (i, f) in u.bins.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{f}");
        }
        let _ = write!(
            out,
            "],\"bin_us\":{},\"white_spaces\":{},\"reserved_us\":{},\"fraction\":{}}}",
            u.bin_us, u.white_spaces, u.reserved_us, u.fraction
        );
        let c = &self.convergence;
        let _ = write!(
            out,
            ",\"convergence\":{{\"estimates\":{},\"n_rounds\":{},\"max_rounds\":{}",
            c.estimates.len(),
            c.n_rounds,
            c.max_rounds
        );
        if let Some(last) = c.estimates.last() {
            let _ = write!(
                out,
                ",\"final_estimate_us\":{},\"final_phase\":\"{}\"",
                last.1, last.3
            );
        }
        out.push_str(",\"re_estimates\":{");
        for (i, (reason, n)) in c.re_estimates.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{reason}\":{n}");
        }
        out.push_str("}},\"faults\":{");
        for (i, (kind, n)) in self.faults.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{kind}\":{n}");
        }
        out.push_str("}}");
        out
    }
}

fn populations(trace: &TraceFile) -> Vec<(String, usize, u64, u64)> {
    trace
        .populations()
        .into_iter()
        .map(|(kind, count)| {
            let first = trace.of_kind(kind).map(|r| r.t_us).next().unwrap_or(0);
            let last = trace.of_kind(kind).map(|r| r.t_us).last().unwrap_or(0);
            (kind.to_string(), count, first, last)
        })
        .collect()
}

/// Per-node tallies plus the flat list of burst spans (for the
/// waterfall).
fn node_bursts(trace: &TraceFile) -> (Vec<NodeBursts>, Vec<u64>) {
    #[derive(Default)]
    struct Acc {
        open_since: Option<u64>,
        spans: Vec<u64>,
        delivered: u64,
        failed: u64,
    }
    let mut nodes: BTreeMap<u64, Acc> = BTreeMap::new();
    for r in &trace.records {
        let Some(node) = r.node() else { continue };
        if r.kind == "burst_complete" {
            let acc = nodes.entry(node).or_default();
            let start = acc.open_since.take().unwrap_or(r.t_us);
            acc.spans.push(r.t_us - start);
            acc.delivered += r.field("delivered").and_then(Value::as_u64).unwrap_or(0);
            acc.failed += r.field("failed").and_then(Value::as_u64).unwrap_or(0);
        } else if BURST_OPENERS.contains(&r.kind.as_str()) {
            let acc = nodes.entry(node).or_default();
            acc.open_since.get_or_insert(r.t_us);
        }
    }
    let mut all_spans = Vec::new();
    let rows = nodes
        .into_iter()
        .filter(|(_, acc)| !acc.spans.is_empty())
        .map(|(node, acc)| {
            let sum: u64 = acc.spans.iter().sum();
            let row = NodeBursts {
                node,
                bursts: acc.spans.len(),
                delivered: acc.delivered,
                failed: acc.failed,
                mean_span_us: sum as f64 / acc.spans.len() as f64,
                max_span_us: acc.spans.iter().copied().max().unwrap_or(0),
            };
            all_spans.extend_from_slice(&acc.spans);
            row
        })
        .collect();
    (rows, all_spans)
}

fn waterfall(spans: &[u64]) -> Vec<WaterfallBucket> {
    let label = |i: usize| -> String {
        let ms = |us: u64| {
            if us >= 1_000_000 {
                format!("{} s", us / 1_000_000)
            } else {
                format!("{} ms", us / 1_000)
            }
        };
        if i == 0 {
            format!("< {}", ms(WATERFALL_EDGES_US[0]))
        } else if i == WATERFALL_EDGES_US.len() {
            format!(">= {}", ms(WATERFALL_EDGES_US[i - 1]))
        } else {
            format!(
                "{}-{}",
                WATERFALL_EDGES_US[i - 1] / 1_000,
                ms(WATERFALL_EDGES_US[i])
            )
        }
    };
    let mut counts = vec![0usize; WATERFALL_EDGES_US.len() + 1];
    for &span in spans {
        let idx = WATERFALL_EDGES_US
            .iter()
            .position(|&edge| span < edge)
            .unwrap_or(WATERFALL_EDGES_US.len());
        counts[idx] += 1;
    }
    counts
        .into_iter()
        .enumerate()
        .filter(|(_, n)| *n > 0)
        .map(|(i, count)| WaterfallBucket {
            label: label(i),
            count,
        })
        .collect()
}

fn utilization(trace: &TraceFile, span_us: u64, bins: usize) -> Utilization {
    let bin_us = span_us.div_ceil(bins as u64).max(1);
    let mut covered = vec![0u64; bins];
    let mut white_spaces = 0usize;
    let mut reserved_us = 0u64;
    for r in trace.of_kind("white_space") {
        let nav = r.field("nav_us").and_then(Value::as_u64).unwrap_or(0);
        white_spaces += 1;
        reserved_us += nav;
        // Spread [t, t+nav) across the bins it overlaps. Clamp the end
        // to the binned range (`bins * bin_us >= span_us`, and a NAV can
        // run past the end of the trace): with `t < end <= total_us`,
        // every chunk lands in a real bin and is at least 1 µs, so the
        // walk always terminates.
        let total_us = bin_us * bins as u64;
        let (mut t, end) = (r.t_us, (r.t_us + nav).min(total_us));
        while t < end {
            let bin = (t / bin_us) as usize;
            let bin_end = (bin as u64 + 1) * bin_us;
            let chunk = end.min(bin_end) - t;
            covered[bin] += chunk;
            t += chunk;
        }
    }
    Utilization {
        bins: covered
            .iter()
            .map(|&c| (c as f64 / bin_us as f64).min(1.0))
            .collect(),
        bin_us,
        white_spaces,
        reserved_us,
        fraction: reserved_us as f64 / span_us as f64,
    }
}

fn convergence(trace: &TraceFile) -> Convergence {
    let mut c = Convergence::default();
    for r in trace.of_kind("estimate") {
        c.estimates.push((
            r.t_us,
            r.field("estimate_us").and_then(Value::as_u64).unwrap_or(0),
            r.field("rounds").and_then(Value::as_u64).unwrap_or(0),
            r.field("phase")
                .and_then(Value::as_str)
                .unwrap_or("?")
                .to_string(),
        ));
    }
    for r in trace.of_kind("n_round") {
        c.n_rounds += 1;
        c.max_rounds = c
            .max_rounds
            .max(r.field("rounds").and_then(Value::as_u64).unwrap_or(0));
    }
    for r in trace.of_kind("re_estimate") {
        let reason = r
            .field("reason")
            .and_then(Value::as_str)
            .unwrap_or("?")
            .to_string();
        match c.re_estimates.iter_mut().find(|(r, _)| *r == reason) {
            Some((_, n)) => *n += 1,
            None => c.re_estimates.push((reason, 1)),
        }
    }
    c
}

/// Convenience: records of one node, used by tests.
pub fn records_of_node(trace: &TraceFile, node: u64) -> Vec<&Record> {
    trace
        .records
        .iter()
        .filter(|r| r.node() == Some(node))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TraceFile {
        let text = "\
{\"schema\":\"bicord-trace/1\",\"seed\":7,\"mode\":\"bicord\",\"duration_us\":1000000}
{\"t_us\":1000,\"ev\":\"channel_request\",\"node\":0}
{\"t_us\":2000,\"ev\":\"n_round\",\"rounds\":1}
{\"t_us\":3000,\"ev\":\"white_space\",\"nav_us\":20000}
{\"t_us\":10000,\"ev\":\"packet_delivered\",\"node\":0,\"seq\":1}
{\"t_us\":26000,\"ev\":\"estimate\",\"estimate_us\":30000,\"rounds\":2,\"phase\":\"learning\"}
{\"t_us\":26000,\"ev\":\"burst_complete\",\"node\":0,\"delivered\":5,\"failed\":0}
{\"t_us\":500000,\"ev\":\"channel_request\",\"node\":1}
{\"t_us\":503000,\"ev\":\"white_space\",\"nav_us\":30000}
{\"t_us\":600000,\"ev\":\"estimate\",\"estimate_us\":31000,\"rounds\":2,\"phase\":\"converged\"}
{\"t_us\":600000,\"ev\":\"re_estimate\",\"reason\":\"shrink-probe\"}
{\"t_us\":601000,\"ev\":\"burst_complete\",\"node\":1,\"delivered\":4,\"failed\":1}
{\"t_us\":700000,\"ev\":\"csma_fallback\",\"node\":1,\"failures\":3}
{\"summary\":true,\"events\":13,\"dequeues\":{\"Timer\":9}}
";
        TraceFile::parse(text).unwrap()
    }

    #[test]
    fn bursts_span_from_first_event_to_completion() {
        let a = Analytics::compute(&sample(), &SummarizeOptions::default());
        assert_eq!(a.bursts.len(), 2);
        let n0 = &a.bursts[0];
        assert_eq!((n0.node, n0.bursts, n0.delivered, n0.failed), (0, 1, 5, 0));
        assert_eq!(n0.max_span_us, 25_000); // 26000 - 1000
        let n1 = &a.bursts[1];
        assert_eq!(n1.max_span_us, 101_000); // 601000 - 500000
                                             // Waterfall: 25 ms span -> "20-50 ms", 101 ms -> "100-200 ms".
        let labels: Vec<&str> = a.waterfall.iter().map(|b| b.label.as_str()).collect();
        assert_eq!(labels, vec!["20-50 ms", "100-200 ms"]);
    }

    #[test]
    fn utilization_covers_the_nav_windows() {
        let a = Analytics::compute(&sample(), &SummarizeOptions { bins: 10 });
        let u = &a.utilization;
        assert_eq!(u.white_spaces, 2);
        assert_eq!(u.reserved_us, 50_000);
        assert!((u.fraction - 0.05).abs() < 1e-9);
        // 10 bins of 100 ms: bin 0 holds the 20 ms window, bin 5 the 30 ms.
        assert!((u.bins[0] - 0.2).abs() < 1e-9, "{:?}", u.bins);
        assert!((u.bins[5] - 0.3).abs() < 1e-9, "{:?}", u.bins);
        assert_eq!(u.bins[9], 0.0);
    }

    #[test]
    fn nav_running_past_the_trace_end_terminates_and_clamps() {
        // The reservation window extends past the last record AND past
        // the binned range; the spread walk must clamp, not wrap.
        let t = TraceFile::parse(
            "{\"schema\":\"bicord-trace/1\",\"seed\":1,\"mode\":\"bicord\",\"duration_us\":100000}\n\
             {\"t_us\":99999,\"ev\":\"white_space\",\"nav_us\":50000}\n",
        )
        .unwrap();
        let a = Analytics::compute(&t, &SummarizeOptions { bins: 10 });
        let u = &a.utilization;
        assert_eq!(u.white_spaces, 1);
        assert_eq!(u.reserved_us, 50_000);
        // Only the tail of the last bin is coverable.
        assert!(u.bins[..9].iter().all(|&f| f == 0.0), "{:?}", u.bins);
        assert!(u.bins[9] > 0.0 && u.bins[9] <= 1.0, "{:?}", u.bins);
    }

    #[test]
    fn convergence_and_faults() {
        let a = Analytics::compute(&sample(), &SummarizeOptions::default());
        assert_eq!(a.convergence.estimates.len(), 2);
        assert_eq!(a.convergence.estimates[1].3, "converged");
        assert_eq!(a.convergence.max_rounds, 1);
        assert_eq!(
            a.convergence.re_estimates,
            vec![("shrink-probe".to_string(), 1)]
        );
        assert_eq!(a.faults, vec![("csma_fallback".to_string(), 1)]);
    }

    #[test]
    fn sections_report_nonempty() {
        let a = Analytics::compute(&sample(), &SummarizeOptions::default());
        for s in ["events", "bursts", "utilization", "convergence", "faults"] {
            assert_eq!(a.section_nonempty(s), Some(true), "{s}");
        }
        assert_eq!(a.section_nonempty("nonsense"), None);
    }

    #[test]
    fn renders_are_deterministic_and_contain_sections() {
        let t = sample();
        let a = Analytics::compute(&t, &SummarizeOptions::default());
        let text = a.render_text(&t);
        for needle in [
            "event populations",
            "per-node bursts",
            "burst latency waterfall",
            "white-space utilization timeline",
            "allocator convergence",
            "faults, fallbacks & guards",
        ] {
            assert!(text.contains(needle), "missing {needle}:\n{text}");
        }
        let json = a.render_json(&t);
        assert!(json.starts_with("{\"schema\":\"bicord-analyze/1\""));
        assert!(json.contains("\"white_spaces\":2"), "{json}");
        assert_eq!(
            json,
            Analytics::compute(&t, &SummarizeOptions::default()).render_json(&t)
        );
    }

    #[test]
    fn empty_trace_still_summarizes() {
        let t = TraceFile::parse(
            "{\"schema\":\"bicord-trace/1\",\"seed\":1,\"mode\":\"x\",\"duration_us\":1000}\n",
        )
        .unwrap();
        let a = Analytics::compute(&t, &SummarizeOptions::default());
        assert_eq!(a.section_nonempty("bursts"), Some(false));
        assert_eq!(a.section_nonempty("utilization"), Some(false));
        let text = a.render_text(&t);
        assert!(text.contains("none recorded"), "{text}");
    }
}
