//! Structural comparison of two `bicord-trace/1` timelines
//! (`bicord analyze diff-trace`).
//!
//! Records are keyed by kind, plus the node index for node-attributed
//! kinds, so "node 2 stopped completing bursts" shows up as its own row
//! instead of vanishing into an aggregate count. For keys whose counts
//! match, the record payloads are compared pairwise in time order, so a
//! count-preserving change (same number of reservations, different
//! lengths) is still reported.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use bicord_metrics::table::TextTable;

use crate::trace::{Record, TraceFile};

/// What happened to one record population between trace A and trace B.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiffStatus {
    /// Present in B only.
    Added,
    /// Present in A only.
    Removed,
    /// Present in both with different counts.
    CountChanged,
    /// Same count, but at least one record's time or payload differs.
    PayloadChanged,
    /// Byte-identical populations.
    Equal,
}

impl DiffStatus {
    /// Stable label used in text and JSON output.
    pub fn label(&self) -> &'static str {
        match self {
            DiffStatus::Added => "added",
            DiffStatus::Removed => "removed",
            DiffStatus::CountChanged => "count-changed",
            DiffStatus::PayloadChanged => "payload-changed",
            DiffStatus::Equal => "equal",
        }
    }
}

/// One population row of the diff report.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffRow {
    /// Population key: `kind` or `kind/node=N`.
    pub key: String,
    /// Record count in trace A.
    pub count_a: usize,
    /// Record count in trace B.
    pub count_b: usize,
    /// The verdict for this population.
    pub status: DiffStatus,
}

/// The full structural diff of two traces.
#[derive(Debug, Clone)]
pub struct TraceDiff {
    /// `(field, value in A, value in B)` for differing header fields.
    pub header_diffs: Vec<(&'static str, String, String)>,
    /// One row per population key present in either trace.
    pub rows: Vec<DiffRow>,
    /// `(kind, count in A, count in B)` for differing DES dequeue
    /// aggregates from the summary trailers.
    pub dequeue_diffs: Vec<(String, u64, u64)>,
}

impl TraceDiff {
    /// `true` when the two traces are structurally identical: same
    /// header, same record stream, same dequeue aggregates.
    pub fn identical(&self) -> bool {
        self.header_diffs.is_empty()
            && self.dequeue_diffs.is_empty()
            && self.rows.iter().all(|r| r.status == DiffStatus::Equal)
    }

    /// Rows that differ, most-changed kinds first (stable by key within
    /// the same status).
    pub fn changed_rows(&self) -> Vec<&DiffRow> {
        self.rows
            .iter()
            .filter(|r| r.status != DiffStatus::Equal)
            .collect()
    }

    /// Renders the text report.
    pub fn render_text(&self, name_a: &str, name_b: &str) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "diff-trace: A = {name_a}, B = {name_b}");
        for (field, a, b) in &self.header_diffs {
            let _ = writeln!(out, "header: {field} differs — A {a}, B {b}");
        }
        let mut table = TextTable::new(vec!["population", "A", "B", "delta", "status"]);
        table.title("record populations");
        for row in &self.rows {
            table.row(vec![
                row.key.clone(),
                row.count_a.to_string(),
                row.count_b.to_string(),
                format!("{:+}", row.count_b as i64 - row.count_a as i64),
                row.status.label().to_string(),
            ]);
        }
        let _ = writeln!(out, "{table}");
        for (kind, a, b) in &self.dequeue_diffs {
            let _ = writeln!(out, "dequeues: {kind} differs — A {a}, B {b}");
        }
        let changed = self.changed_rows().len();
        if self.identical() {
            out.push_str("diff-trace: IDENTICAL — same header, records, and dequeue counts\n");
        } else {
            let _ = writeln!(
                out,
                "diff-trace: DIFFER — {changed} population(s) changed, {} header field(s), \
                 {} dequeue kind(s)",
                self.header_diffs.len(),
                self.dequeue_diffs.len()
            );
        }
        out
    }

    /// Renders the diff as one deterministic JSON document.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\"schema\":\"bicord-analyze-diff/1\"");
        let _ = write!(out, ",\"identical\":{}", self.identical());
        out.push_str(",\"header\":{");
        for (i, (field, a, b)) in self.header_diffs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{field}\":{{\"a\":\"{a}\",\"b\":\"{b}\"}}");
        }
        out.push_str("},\"populations\":[");
        for (i, row) in self.rows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"key\":\"{}\",\"a\":{},\"b\":{},\"status\":\"{}\"}}",
                row.key,
                row.count_a,
                row.count_b,
                row.status.label()
            );
        }
        out.push_str("],\"dequeues\":[");
        for (i, (kind, a, b)) in self.dequeue_diffs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{{\"kind\":\"{kind}\",\"a\":{a},\"b\":{b}}}");
        }
        out.push_str("]}");
        out
    }
}

/// The population key of one record.
fn key_of(record: &Record) -> String {
    match record.node() {
        Some(node) => format!("{}/node={node}", record.kind),
        None => record.kind.clone(),
    }
}

fn group(trace: &TraceFile) -> BTreeMap<String, Vec<&Record>> {
    let mut map: BTreeMap<String, Vec<&Record>> = BTreeMap::new();
    for r in &trace.records {
        map.entry(key_of(r)).or_default().push(r);
    }
    map
}

/// Structurally compares two parsed traces. Both are already guaranteed
/// to carry the same schema version — [`TraceFile`] refuses anything but
/// `bicord-trace/1`.
pub fn diff_traces(a: &TraceFile, b: &TraceFile) -> TraceDiff {
    let mut header_diffs = Vec::new();
    if a.header.seed != b.header.seed {
        header_diffs.push(("seed", a.header.seed.to_string(), b.header.seed.to_string()));
    }
    if a.header.mode != b.header.mode {
        header_diffs.push(("mode", a.header.mode.clone(), b.header.mode.clone()));
    }
    if a.header.duration_us != b.header.duration_us {
        header_diffs.push((
            "duration_us",
            a.header.duration_us.to_string(),
            b.header.duration_us.to_string(),
        ));
    }

    let (groups_a, groups_b) = (group(a), group(b));
    let mut keys: Vec<&String> = groups_a.keys().chain(groups_b.keys()).collect();
    keys.sort();
    keys.dedup();
    let empty: Vec<&Record> = Vec::new();
    let rows = keys
        .into_iter()
        .map(|key| {
            let ra = groups_a.get(key).unwrap_or(&empty);
            let rb = groups_b.get(key).unwrap_or(&empty);
            let status = if ra.is_empty() {
                DiffStatus::Added
            } else if rb.is_empty() {
                DiffStatus::Removed
            } else if ra.len() != rb.len() {
                DiffStatus::CountChanged
            } else if ra
                .iter()
                .zip(rb.iter())
                .any(|(x, y)| x.t_us != y.t_us || x.fields != y.fields)
            {
                DiffStatus::PayloadChanged
            } else {
                DiffStatus::Equal
            };
            DiffRow {
                key: key.clone(),
                count_a: ra.len(),
                count_b: rb.len(),
                status,
            }
        })
        .collect();

    let empty_summary = crate::trace::TraceSummary::default();
    let (sa, sb) = (
        a.summary.as_ref().unwrap_or(&empty_summary),
        b.summary.as_ref().unwrap_or(&empty_summary),
    );
    let mut dequeue_kinds: Vec<&String> = sa.dequeues.keys().chain(sb.dequeues.keys()).collect();
    dequeue_kinds.sort();
    dequeue_kinds.dedup();
    let dequeue_diffs = dequeue_kinds
        .into_iter()
        .filter_map(|kind| {
            let (ca, cb) = (
                sa.dequeues.get(kind).copied().unwrap_or(0),
                sb.dequeues.get(kind).copied().unwrap_or(0),
            );
            (ca != cb).then(|| (kind.clone(), ca, cb))
        })
        .collect();

    TraceDiff {
        header_diffs,
        rows,
        dequeue_diffs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BASE: &str = "\
{\"schema\":\"bicord-trace/1\",\"seed\":42,\"mode\":\"bicord\",\"duration_us\":1000000}
{\"t_us\":100,\"ev\":\"channel_request\",\"node\":0}
{\"t_us\":200,\"ev\":\"reservation\",\"ws_us\":30000}
{\"t_us\":900,\"ev\":\"burst_complete\",\"node\":0,\"delivered\":5,\"failed\":0}
{\"summary\":true,\"events\":3,\"dequeues\":{\"Timer\":7}}
";

    #[test]
    fn identical_traces_diff_clean() {
        let a = TraceFile::parse(BASE).unwrap();
        let d = diff_traces(&a, &a.clone());
        assert!(d.identical());
        assert!(d.changed_rows().is_empty());
        assert!(d.render_text("a", "b").contains("IDENTICAL"));
        assert!(d.render_json().contains("\"identical\":true"));
    }

    #[test]
    fn added_removed_and_count_changes_are_attributed() {
        let a = TraceFile::parse(BASE).unwrap();
        let other = BASE
            .replace(
                "{\"t_us\":200,\"ev\":\"reservation\",\"ws_us\":30000}",
                "{\"t_us\":200,\"ev\":\"reservation\",\"ws_us\":30000}\n\
                 {\"t_us\":300,\"ev\":\"reservation\",\"ws_us\":10000}\n\
                 {\"t_us\":400,\"ev\":\"csma_fallback\",\"node\":1,\"failures\":3}",
            )
            .replace("{\"t_us\":100,\"ev\":\"channel_request\",\"node\":0}\n", "");
        let b = TraceFile::parse(&other).unwrap();
        let d = diff_traces(&a, &b);
        assert!(!d.identical());
        let by_key = |key: &str| d.rows.iter().find(|r| r.key == key).unwrap();
        assert_eq!(by_key("channel_request/node=0").status, DiffStatus::Removed);
        assert_eq!(by_key("csma_fallback/node=1").status, DiffStatus::Added);
        assert_eq!(by_key("reservation").status, DiffStatus::CountChanged);
        assert_eq!(by_key("burst_complete/node=0").status, DiffStatus::Equal);
    }

    #[test]
    fn count_preserving_payload_change_is_caught() {
        let a = TraceFile::parse(BASE).unwrap();
        let b = TraceFile::parse(&BASE.replace("\"ws_us\":30000", "\"ws_us\":31000")).unwrap();
        let d = diff_traces(&a, &b);
        let row = d.rows.iter().find(|r| r.key == "reservation").unwrap();
        assert_eq!(row.status, DiffStatus::PayloadChanged);
        assert!(!d.identical());
    }

    #[test]
    fn header_and_dequeue_divergence_reported() {
        let a = TraceFile::parse(BASE).unwrap();
        let b = TraceFile::parse(
            &BASE
                .replace("\"seed\":42", "\"seed\":43")
                .replace("\"Timer\":7", "\"Timer\":9"),
        )
        .unwrap();
        let d = diff_traces(&a, &b);
        assert_eq!(d.header_diffs.len(), 1);
        assert_eq!(d.header_diffs[0].0, "seed");
        assert_eq!(d.dequeue_diffs, vec![("Timer".to_string(), 7, 9)]);
        let text = d.render_text("a", "b");
        assert!(text.contains("seed differs"), "{text}");
        assert!(text.contains("DIFFER"), "{text}");
    }
}
