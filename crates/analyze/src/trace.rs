//! Parser for `bicord-trace/1` JSONL timelines.
//!
//! A trace file (written by `JsonlSink`, see `docs/OBSERVABILITY.md`) is
//! one [`TraceHeader`] line, zero or more flat single-line event records,
//! and a `{"summary":true,...}` trailer. This module reads the whole file
//! into a [`TraceFile`]: every record becomes a [`Record`] whose fields
//! keep their JSON names and primitive values, so the analytics layer
//! never re-parses text.
//!
//! Parsing is **closed-world**: every `ev` kind must be listed in
//! [`KNOWN_KINDS`]. An unknown kind is a hard [`TraceError::UnknownKind`]
//! naming the offender — when a new `TraceEvent` variant is added to the
//! sinks, the analyzer (this list, the summarizer's section routing, and
//! the exhaustive round-trip test in `tests/record_kinds.rs`) must learn
//! it in the same change, instead of silently dropping records.

use std::collections::BTreeMap;
use std::fmt;
use std::path::Path;

use bicord_sim::obs::TraceHeader;

/// Every record kind the `bicord-trace/1` sinks emit, in taxonomy order
/// (the table in `docs/OBSERVABILITY.md`). The exhaustive round-trip test
/// (`tests/record_kinds.rs`) fails with the kind's name if the emitters
/// and this list ever diverge.
pub const KNOWN_KINDS: &[&str] = &[
    "dequeue",
    "csi_classified",
    "detection",
    "channel_request",
    "reservation",
    "white_space",
    "n_round",
    "estimate",
    "re_estimate",
    "burst_complete",
    "packet_delivered",
    "trial_resolved",
    "medium_cache_invalidated",
    "medium_cache_stats",
    "medium_grid_stats",
    "fault_control_lost",
    "fault_cts_lost",
    "fault_phantom_csi",
    "fault_churn",
    "signaling_backoff",
    "csma_fallback",
    "learning_abort",
    "guard_stall",
    "guard_liveness",
    "guard_conservation",
];

/// One primitive field value of a trace record.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A non-negative integer (`t_us`, counters, node indices).
    U64(u64),
    /// A float (`deviation`).
    F64(f64),
    /// `true` / `false` (`high`, `detected`).
    Bool(bool),
    /// A bare string (`phase`, `reason`, `invariant`, dequeue `kind`).
    Str(String),
}

impl Value {
    /// The value as `u64`, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Re-serializes the value exactly as the sink wrote it.
    pub fn to_json(&self) -> String {
        match self {
            Value::U64(v) => v.to_string(),
            Value::F64(v) => v.to_string(),
            Value::Bool(v) => v.to_string(),
            Value::Str(s) => format!("\"{s}\""),
        }
    }
}

/// One parsed event record.
#[derive(Debug, Clone, PartialEq)]
pub struct Record {
    /// Virtual timestamp in microseconds.
    pub t_us: u64,
    /// The `ev` kind label (guaranteed to be in [`KNOWN_KINDS`]).
    pub kind: String,
    /// The record's extra fields, in file order, excluding `t_us`/`ev`.
    pub fields: Vec<(String, Value)>,
}

impl Record {
    /// Looks up a field by name.
    pub fn field(&self, name: &str) -> Option<&Value> {
        self.fields.iter().find(|(n, _)| n == name).map(|(_, v)| v)
    }

    /// The `node` field, when the record is node-attributed.
    pub fn node(&self) -> Option<u64> {
        self.field("node").and_then(Value::as_u64)
    }
}

/// The parsed `{"summary":true,...}` trailer.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceSummary {
    /// Records the sink reported writing (excludes header and trailer).
    pub events: u64,
    /// Aggregated per-DES-event-kind dequeue counts.
    pub dequeues: BTreeMap<String, u64>,
}

/// A fully parsed `bicord-trace/1` file.
#[derive(Debug, Clone)]
pub struct TraceFile {
    /// The schema-versioned header line.
    pub header: TraceHeader,
    /// All event records, in file (= virtual time) order.
    pub records: Vec<Record>,
    /// The summary trailer, if the run finished cleanly.
    pub summary: Option<TraceSummary>,
}

/// Why a trace file failed to parse.
#[derive(Debug)]
pub enum TraceError {
    /// The file could not be read.
    Io(std::io::Error),
    /// Line 1 is not a `bicord-trace/1` header.
    BadHeader,
    /// A record line is not flat single-line JSON of the expected shape.
    BadRecord {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        reason: String,
    },
    /// A record carries an `ev` kind the analyzer does not know.
    UnknownKind {
        /// 1-based line number.
        line: usize,
        /// The offending kind label.
        kind: String,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "cannot read trace: {e}"),
            TraceError::BadHeader => write!(
                f,
                "line 1 is not a {} header (is this a JSONL trace written by \
                 `bicord --trace` / a bench `--trace`?)",
                bicord_sim::obs::TRACE_SCHEMA
            ),
            TraceError::BadRecord { line, reason } => {
                write!(f, "line {line}: malformed trace record: {reason}")
            }
            TraceError::UnknownKind { line, kind } => write!(
                f,
                "line {line}: unknown record kind \"{kind}\" — the trace schema grew a \
                 kind bicord_analyze does not consume yet; add it to \
                 bicord_analyze::trace::KNOWN_KINDS and route it in the summarizer"
            ),
        }
    }
}

impl std::error::Error for TraceError {}

impl From<std::io::Error> for TraceError {
    fn from(e: std::io::Error) -> Self {
        TraceError::Io(e)
    }
}

impl TraceFile {
    /// Reads and parses a trace file from disk.
    pub fn read(path: impl AsRef<Path>) -> Result<Self, TraceError> {
        let text = std::fs::read_to_string(path)?;
        Self::parse(&text)
    }

    /// Parses the full text of a trace file.
    pub fn parse(text: &str) -> Result<Self, TraceError> {
        let mut lines = text.lines().enumerate();
        let header = lines
            .next()
            .and_then(|(_, l)| TraceHeader::parse(l))
            .ok_or(TraceError::BadHeader)?;
        let mut records = Vec::new();
        let mut summary = None;
        for (idx, line) in lines {
            let line_no = idx + 1;
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            if line.contains("\"summary\":true") {
                summary = Some(parse_summary(line, line_no)?);
                continue;
            }
            records.push(parse_record(line, line_no)?);
        }
        Ok(TraceFile {
            header,
            records,
            summary,
        })
    }

    /// Per-kind record counts, in [`KNOWN_KINDS`] order (kinds absent
    /// from the trace are omitted).
    pub fn populations(&self) -> Vec<(&'static str, usize)> {
        KNOWN_KINDS
            .iter()
            .filter_map(|kind| {
                let n = self.records.iter().filter(|r| r.kind == *kind).count();
                (n > 0).then_some((*kind, n))
            })
            .collect()
    }

    /// All records of one kind, in time order.
    pub fn of_kind<'a>(&'a self, kind: &'a str) -> impl Iterator<Item = &'a Record> + 'a {
        self.records.iter().filter(move |r| r.kind == kind)
    }
}

/// Splits a flat single-line JSON object (`{"a":1,"b":"x"}`) into
/// `(name, raw-value)` pairs. The sinks never emit nested objects,
/// arrays (other than the summary's `dequeues` map, handled separately),
/// escapes, or whitespace, so a linear scan suffices.
fn split_flat_object(line: &str) -> Option<Vec<(&str, &str)>> {
    let body = line.strip_prefix('{')?.strip_suffix('}')?;
    let mut out = Vec::new();
    let mut rest = body;
    while !rest.is_empty() {
        rest = rest.strip_prefix('"')?;
        let name_end = rest.find('"')?;
        let name = &rest[..name_end];
        rest = rest[name_end + 1..].strip_prefix(':')?;
        let value_end = if let Some(quoted) = rest.strip_prefix('"') {
            quoted.find('"')? + 2
        } else {
            rest.find(',').unwrap_or(rest.len())
        };
        out.push((name, &rest[..value_end]));
        rest = &rest[value_end..];
        rest = rest.strip_prefix(',').unwrap_or(rest);
    }
    Some(out)
}

/// Parses one raw JSON value the sinks can emit.
fn parse_value(raw: &str) -> Option<Value> {
    if let Some(stripped) = raw.strip_prefix('"') {
        return Some(Value::Str(stripped.strip_suffix('"')?.to_string()));
    }
    match raw {
        "true" => return Some(Value::Bool(true)),
        "false" => return Some(Value::Bool(false)),
        _ => {}
    }
    if let Ok(v) = raw.parse::<u64>() {
        return Some(Value::U64(v));
    }
    raw.parse::<f64>().ok().map(Value::F64)
}

fn parse_record(line: &str, line_no: usize) -> Result<Record, TraceError> {
    let bad = |reason: &str| TraceError::BadRecord {
        line: line_no,
        reason: reason.to_string(),
    };
    let pairs = split_flat_object(line).ok_or_else(|| bad("not a flat JSON object"))?;
    let mut t_us = None;
    let mut kind = None;
    let mut fields = Vec::new();
    for (name, raw) in pairs {
        let value = parse_value(raw)
            .ok_or_else(|| bad(&format!("field \"{name}\" has unparseable value {raw}")))?;
        match name {
            "t_us" => t_us = value.as_u64(),
            "ev" => kind = value.as_str().map(str::to_string),
            _ => fields.push((name.to_string(), value)),
        }
    }
    let t_us = t_us.ok_or_else(|| bad("missing integer \"t_us\""))?;
    let kind = kind.ok_or_else(|| bad("missing string \"ev\""))?;
    if !KNOWN_KINDS.contains(&kind.as_str()) {
        return Err(TraceError::UnknownKind {
            line: line_no,
            kind,
        });
    }
    Ok(Record { t_us, kind, fields })
}

fn parse_summary(line: &str, line_no: usize) -> Result<TraceSummary, TraceError> {
    let bad = |reason: &str| TraceError::BadRecord {
        line: line_no,
        reason: reason.to_string(),
    };
    let mut summary = TraceSummary::default();
    let events_marker = "\"events\":";
    if let Some(start) = line.find(events_marker) {
        let digits: String = line[start + events_marker.len()..]
            .chars()
            .take_while(|c| c.is_ascii_digit())
            .collect();
        summary.events = digits.parse().map_err(|_| bad("bad \"events\" count"))?;
    }
    let dequeues_marker = "\"dequeues\":{";
    if let Some(start) = line.find(dequeues_marker) {
        let body = &line[start + dequeues_marker.len()..];
        let end = body
            .find('}')
            .ok_or_else(|| bad("unterminated dequeues map"))?;
        for pair in body[..end].split(',').filter(|p| !p.is_empty()) {
            let (name, count) = pair
                .split_once(':')
                .ok_or_else(|| bad("malformed dequeues entry"))?;
            let name = name.trim_matches('"').to_string();
            let count = count.parse().map_err(|_| bad("bad dequeue count"))?;
            summary.dequeues.insert(name, count);
        }
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
{\"schema\":\"bicord-trace/1\",\"seed\":42,\"mode\":\"bicord\",\"duration_us\":2000000}
{\"t_us\":100,\"ev\":\"channel_request\",\"node\":0}
{\"t_us\":250,\"ev\":\"reservation\",\"ws_us\":30000}
{\"t_us\":300,\"ev\":\"white_space\",\"nav_us\":28000}
{\"t_us\":400,\"ev\":\"csi_classified\",\"deviation\":0.25,\"high\":true}
{\"t_us\":900,\"ev\":\"estimate\",\"estimate_us\":42000,\"rounds\":3,\"phase\":\"learning\"}
{\"t_us\":950,\"ev\":\"burst_complete\",\"node\":0,\"delivered\":5,\"failed\":0}
{\"summary\":true,\"events\":6,\"dequeues\":{\"Timer\":12,\"TxEnd\":4}}
";

    #[test]
    fn parses_a_full_file() {
        let t = TraceFile::parse(SAMPLE).unwrap();
        assert_eq!(t.header.seed, 42);
        assert_eq!(t.records.len(), 6);
        assert_eq!(t.records[0].kind, "channel_request");
        assert_eq!(t.records[0].node(), Some(0));
        assert_eq!(t.records[3].field("deviation"), Some(&Value::F64(0.25)));
        assert_eq!(
            t.records[4].field("phase").unwrap().as_str(),
            Some("learning")
        );
        let s = t.summary.unwrap();
        assert_eq!(s.events, 6);
        assert_eq!(s.dequeues.get("Timer"), Some(&12));
        assert_eq!(s.dequeues.get("TxEnd"), Some(&4));
    }

    #[test]
    fn populations_follow_taxonomy_order() {
        let t = TraceFile::parse(SAMPLE).unwrap();
        let pops = t.populations();
        assert_eq!(
            pops,
            vec![
                ("csi_classified", 1),
                ("channel_request", 1),
                ("reservation", 1),
                ("white_space", 1),
                ("estimate", 1),
                ("burst_complete", 1),
            ]
        );
    }

    #[test]
    fn rejects_missing_or_foreign_header() {
        assert!(matches!(
            TraceFile::parse("not json\n"),
            Err(TraceError::BadHeader)
        ));
        let foreign =
            "{\"schema\":\"bicord-trace/999\",\"seed\":1,\"mode\":\"x\",\"duration_us\":1}\n";
        assert!(matches!(
            TraceFile::parse(foreign),
            Err(TraceError::BadHeader)
        ));
    }

    #[test]
    fn unknown_kind_is_a_naming_error() {
        let text = "{\"schema\":\"bicord-trace/1\",\"seed\":1,\"mode\":\"x\",\"duration_us\":1}\n\
                    {\"t_us\":5,\"ev\":\"warp_drive\",\"x\":1}\n";
        let err = TraceFile::parse(text).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("warp_drive"), "{msg}");
        assert!(msg.contains("KNOWN_KINDS"), "{msg}");
        assert!(msg.contains("line 2"), "{msg}");
    }

    #[test]
    fn malformed_record_names_the_line() {
        let text = "{\"schema\":\"bicord-trace/1\",\"seed\":1,\"mode\":\"x\",\"duration_us\":1}\n\
                    {\"ev\":\"reservation\",\"ws_us\":1}\n";
        let err = TraceFile::parse(text).unwrap_err();
        assert!(err.to_string().contains("t_us"), "{err}");
    }

    #[test]
    fn value_json_round_trip() {
        for raw in ["12", "0.25", "true", "false", "\"learning\""] {
            assert_eq!(parse_value(raw).unwrap().to_json(), raw);
        }
    }
}
