//! Perf-budget engine (`bicord analyze diff-bench`): compares two
//! `BENCH_results.json` files under per-metric threshold rules and turns
//! the perf trajectory into an enforced budget.
//!
//! Records are keyed by `(experiment, quick, shard)` — shard-tagged
//! entries written by `--spec --shard K/N` bench runs diff against the
//! matching shard of the baseline, never against the unsharded record.
//!
//! # Budget rules
//!
//! A [`BudgetRule`] selects metrics by substring match on the experiment
//! name and the metric name (with an optional disqualifying substring)
//! and applies one of three checks:
//!
//! * [`RuleKind::MaxRegressionPct`] — lower-is-better latencies: breach
//!   when `current > baseline × (1 + limit/100)`.
//! * [`RuleKind::MaxDropPct`] — higher-is-better throughput/quality
//!   floors: breach when `current < baseline × (1 - limit/100)`.
//! * [`RuleKind::MaxValue`] — absolute ceilings evaluated on the current
//!   file alone (no baseline entry needed), e.g. quarantined-cell counts.
//!
//! The default rule set (see [`default_rules`]) reproduces the historic
//! `bench_compare` gate — +25% on the `_ns` latency metrics of
//! `medium_microbench` / `dense_city_scaling`, `nocull` contrast columns
//! exempt — and adds PDR/utilization floors plus a zero ceiling on
//! `quarantined_cells`. `--rules FILE` replaces it with a JSON list; see
//! `docs/ANALYTICS.md` for the format.

use std::fmt::Write as _;

use bicord_metrics::table::{fmt1, TextTable};

/// Default regression threshold for the latency rules, percent.
pub const DEFAULT_THRESHOLD_PCT: f64 = 25.0;

/// Default allowed drop for higher-is-better metrics, percent. The gated
/// quality metrics (PDR, utilization) are deterministic for a seeded run,
/// so any real drop is a behavior change; 5% only absorbs float
/// formatting drift.
pub const DEFAULT_DROP_PCT: f64 = 5.0;

/// One parsed `BENCH_results.json` entry.
#[derive(Debug, Clone)]
pub struct BenchEntry {
    /// Experiment name (`"medium_microbench"`, ...).
    pub experiment: String,
    /// Whether the record came from a `--quick` run.
    pub quick: bool,
    /// `"K/N"` for shard-tagged records, `None` for unsharded ones.
    pub shard: Option<String>,
    /// The raw single-line record, for `--bless` passthrough.
    pub line: String,
    /// The flat metrics map (non-finite values dropped).
    pub metrics: Vec<(String, f64)>,
}

impl BenchEntry {
    /// The `(experiment, quick, shard)` identity used for matching.
    fn key(&self) -> (&str, bool, Option<&str>) {
        (&self.experiment, self.quick, self.shard.as_deref())
    }

    /// Display label: `experiment`, plus `[K/N]` for shard-tagged and
    /// `:quick` for quick-mode records, so same-experiment rows stay
    /// tellable apart in reports.
    fn label(&self) -> String {
        let mut label = self.experiment.clone();
        if let Some(s) = &self.shard {
            let _ = write!(label, "[{s}]");
        }
        if self.quick {
            label.push_str(":quick");
        }
        label
    }
}

/// Extracts the string value of `"key": "…"` from a record line.
fn field_str(line: &str, key: &str) -> Option<String> {
    let marker = format!("\"{key}\": \"");
    let start = line.find(&marker)? + marker.len();
    let rest = &line[start..];
    Some(rest[..rest.find('"')?].to_string())
}

/// Extracts the boolean value of `"key": true|false` from a record line.
fn field_bool(line: &str, key: &str) -> Option<bool> {
    let marker = format!("\"{key}\": ");
    let start = line.find(&marker)? + marker.len();
    let rest = &line[start..];
    if rest.starts_with("true") {
        Some(true)
    } else if rest.starts_with("false") {
        Some(false)
    } else {
        None
    }
}

/// Parses the flat `"metrics": {…}` map at the end of a record line.
/// Entries with non-finite (`null`) values are skipped.
fn parse_metrics(line: &str) -> Vec<(String, f64)> {
    let Some(start) = line.find("\"metrics\": {") else {
        return Vec::new();
    };
    let body = &line[start + "\"metrics\": {".len()..];
    // First `}` closes the metrics map (values are plain numbers or
    // `null`); the record's own closing brace follows it.
    let Some(end) = body.find('}') else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for pair in body[..end].split(", \"") {
        let pair = pair.trim_start_matches('"');
        let Some((name, value)) = pair.split_once("\": ") else {
            continue;
        };
        if let Ok(v) = value.trim().parse::<f64>() {
            out.push((name.to_string(), v));
        }
    }
    out
}

/// Parses every record line of a results file (the format
/// `PerfRecorder::merge_record` writes: one JSON object per line inside a
/// `[` … `]` array).
pub fn parse_bench_file(text: &str) -> Vec<BenchEntry> {
    let mut out = Vec::new();
    for line in text.lines() {
        let line = line.trim().trim_end_matches(',');
        if !line.starts_with('{') {
            continue;
        }
        let Some(experiment) = field_str(line, "experiment") else {
            continue;
        };
        out.push(BenchEntry {
            experiment,
            quick: field_bool(line, "quick").unwrap_or(false),
            shard: field_str(line, "shard"),
            line: line.to_string(),
            metrics: parse_metrics(line),
        });
    }
    out
}

/// The check a [`BudgetRule`] applies.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RuleKind {
    /// Lower-is-better: breach when current exceeds baseline by more
    /// than `limit` percent.
    MaxRegressionPct,
    /// Higher-is-better: breach when current falls below baseline by
    /// more than `limit` percent.
    MaxDropPct,
    /// Absolute ceiling on the current value (baseline not consulted).
    MaxValue,
}

impl RuleKind {
    /// The identifier used in the JSON rules file.
    pub fn name(&self) -> &'static str {
        match self {
            RuleKind::MaxRegressionPct => "max_regression_pct",
            RuleKind::MaxDropPct => "max_drop_pct",
            RuleKind::MaxValue => "max_value",
        }
    }

    fn parse(s: &str) -> Option<Self> {
        match s {
            "max_regression_pct" => Some(RuleKind::MaxRegressionPct),
            "max_drop_pct" => Some(RuleKind::MaxDropPct),
            "max_value" => Some(RuleKind::MaxValue),
            _ => None,
        }
    }
}

/// One per-metric threshold rule.
#[derive(Debug, Clone, PartialEq)]
pub struct BudgetRule {
    /// Substring match on the experiment name (empty = any experiment).
    pub experiment: String,
    /// Substring match on the metric name (empty = any metric).
    pub metric: String,
    /// Metrics containing this substring are exempt (empty = none).
    pub exclude: String,
    /// The check to apply.
    pub kind: RuleKind,
    /// The threshold (percent for the relative kinds, absolute for
    /// [`RuleKind::MaxValue`]).
    pub limit: f64,
}

impl BudgetRule {
    fn matches(&self, experiment: &str, metric: &str) -> bool {
        (self.experiment.is_empty() || experiment.contains(&self.experiment))
            && (self.metric.is_empty() || metric.contains(&self.metric))
            && (self.exclude.is_empty() || !metric.contains(&self.exclude))
    }

    /// Human-readable limit, e.g. `"<= +25%"` or `"<= 0"`.
    pub fn limit_text(&self) -> String {
        match self.kind {
            RuleKind::MaxRegressionPct => format!("<= +{:.0}%", self.limit),
            RuleKind::MaxDropPct => format!(">= -{:.0}%", self.limit),
            RuleKind::MaxValue => format!("<= {}", self.limit),
        }
    }
}

/// The built-in rule set. `threshold_pct` overrides the latency
/// regression limit (the historic `--threshold` flag).
pub fn default_rules(threshold_pct: f64) -> Vec<BudgetRule> {
    let latency = |experiment: &str| BudgetRule {
        experiment: experiment.to_string(),
        metric: "_ns".to_string(),
        exclude: "nocull".to_string(),
        kind: RuleKind::MaxRegressionPct,
        limit: threshold_pct,
    };
    vec![
        latency("medium_microbench"),
        latency("dense_city_scaling"),
        BudgetRule {
            experiment: String::new(),
            metric: "pdr".to_string(),
            exclude: String::new(),
            kind: RuleKind::MaxDropPct,
            limit: DEFAULT_DROP_PCT,
        },
        BudgetRule {
            experiment: String::new(),
            metric: "utilization".to_string(),
            exclude: String::new(),
            kind: RuleKind::MaxDropPct,
            limit: DEFAULT_DROP_PCT,
        },
        BudgetRule {
            experiment: String::new(),
            metric: "quarantined_cells".to_string(),
            exclude: String::new(),
            kind: RuleKind::MaxValue,
            limit: 0.0,
        },
    ]
}

/// Parses a JSON rules file: an array of flat objects with string fields
/// `experiment`, `metric`, optional `exclude`, `rule` (one of
/// `max_regression_pct` / `max_drop_pct` / `max_value`) and a numeric
/// `limit`. See `docs/ANALYTICS.md` for examples.
pub fn parse_rules(text: &str) -> Result<Vec<BudgetRule>, String> {
    let mut rules = Vec::new();
    let mut rest = text;
    while let Some(start) = rest.find('{') {
        let end = rest[start..].find('}').ok_or("unterminated rule object")? + start;
        let body = &rest[start + 1..end];
        rest = &rest[end + 1..];
        let field = |name: &str| -> Option<String> {
            let marker = format!("\"{name}\"");
            let at = body.find(&marker)? + marker.len();
            let after = body[at..].trim_start().strip_prefix(':')?.trim_start();
            if let Some(stripped) = after.strip_prefix('"') {
                Some(stripped[..stripped.find('"')?].to_string())
            } else {
                let value: String = after
                    .chars()
                    .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-' || *c == '+')
                    .collect();
                (!value.is_empty()).then_some(value)
            }
        };
        let kind_name = field("rule").ok_or("rule object lacks a \"rule\" field")?;
        let kind = RuleKind::parse(&kind_name).ok_or_else(|| {
            format!(
                "unknown rule kind \"{kind_name}\" (valid: max_regression_pct, \
                 max_drop_pct, max_value)"
            )
        })?;
        let limit = field("limit")
            .and_then(|v| v.parse().ok())
            .ok_or("rule object lacks a numeric \"limit\" field")?;
        rules.push(BudgetRule {
            experiment: field("experiment").unwrap_or_default(),
            metric: field("metric").unwrap_or_default(),
            exclude: field("exclude").unwrap_or_default(),
            kind,
            limit,
        });
    }
    if rules.is_empty() {
        return Err("rules file holds no rule objects".to_string());
    }
    Ok(rules)
}

/// The verdict for one gated metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Within budget.
    Ok,
    /// Budget breached.
    Breach,
}

/// One evaluated `(entry, metric)` pair.
#[derive(Debug, Clone)]
pub struct BudgetRow {
    /// `experiment` or `experiment[K/N]`.
    pub entry: String,
    /// Metric name.
    pub metric: String,
    /// Baseline value (`None` for [`RuleKind::MaxValue`] rows).
    pub baseline: Option<f64>,
    /// Current value.
    pub current: f64,
    /// Relative change in percent (`None` for absolute-ceiling rows or a
    /// zero baseline).
    pub delta_pct: Option<f64>,
    /// The applied limit, human-readable.
    pub limit: String,
    /// Pass/fail for this metric.
    pub verdict: Verdict,
}

/// The full budget evaluation.
#[derive(Debug, Clone)]
pub struct BudgetReport {
    /// Every gated metric, in current-file order.
    pub rows: Vec<BudgetRow>,
    /// The latency threshold in effect (for the title line).
    pub threshold_pct: f64,
    /// Current-file entries with no matching baseline entry.
    pub unmatched: Vec<String>,
}

impl BudgetReport {
    /// The breached rows.
    pub fn breaches(&self) -> Vec<&BudgetRow> {
        self.rows
            .iter()
            .filter(|r| r.verdict == Verdict::Breach)
            .collect()
    }

    /// One-line descriptions of every breach, naming the metric.
    pub fn breach_lines(&self) -> Vec<String> {
        self.breaches()
            .iter()
            .map(|r| match (r.baseline, r.delta_pct) {
                (Some(base), Some(delta)) => format!(
                    "{}/{}: {} -> {} ({delta:+.1}%, budget {})",
                    r.entry,
                    r.metric,
                    fmt1(base),
                    fmt1(r.current),
                    r.limit
                ),
                _ => format!(
                    "{}/{}: {} (budget {})",
                    r.entry,
                    r.metric,
                    fmt1(r.current),
                    r.limit
                ),
            })
            .collect()
    }

    /// Renders the aligned text report with a PASS/FAIL trailer.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let mut table = TextTable::new(vec![
            "entry", "metric", "baseline", "current", "delta %", "budget", "verdict",
        ]);
        table.title(format!(
            "diff-bench — perf budget (latency threshold +{:.0}%)",
            self.threshold_pct
        ));
        for r in &self.rows {
            table.row(row_cells(r));
        }
        let _ = writeln!(out, "{table}");
        for entry in &self.unmatched {
            let _ = writeln!(
                out,
                "diff-bench: note — no baseline entry for {entry}, relative rules skipped"
            );
        }
        let breaches = self.breach_lines();
        if breaches.is_empty() {
            let _ = writeln!(
                out,
                "diff-bench: PASS — {} metric(s) within budget",
                self.rows.len()
            );
        } else {
            let _ = writeln!(
                out,
                "diff-bench: FAIL — {} of {} metric(s) breached the budget:",
                breaches.len(),
                self.rows.len()
            );
            for b in &breaches {
                let _ = writeln!(out, "  {b}");
            }
        }
        out
    }

    /// Renders the report as a markdown document (the CI `perf-budget`
    /// artifact).
    pub fn render_markdown(&self) -> String {
        let mut out = String::from("# Perf budget report\n\n");
        let breaches = self.breach_lines();
        if breaches.is_empty() {
            let _ = writeln!(
                out,
                "**PASS** — {} gated metric(s) within budget.\n",
                self.rows.len()
            );
        } else {
            let _ = writeln!(
                out,
                "**FAIL** — {} of {} gated metric(s) breached the budget:\n",
                breaches.len(),
                self.rows.len()
            );
            for b in &breaches {
                let _ = writeln!(out, "- `{b}`");
            }
            out.push('\n');
        }
        out.push_str("| entry | metric | baseline | current | delta % | budget | verdict |\n");
        out.push_str("|---|---|---|---|---|---|---|\n");
        for r in &self.rows {
            let _ = writeln!(out, "| {} |", row_cells(r).join(" | "));
        }
        if !self.unmatched.is_empty() {
            out.push('\n');
            for entry in &self.unmatched {
                let _ = writeln!(
                    out,
                    "*No baseline entry for `{entry}`; relative rules skipped.*"
                );
            }
        }
        out
    }
}

fn row_cells(r: &BudgetRow) -> Vec<String> {
    vec![
        r.entry.clone(),
        r.metric.clone(),
        r.baseline.map(fmt1).unwrap_or_else(|| "-".to_string()),
        fmt1(r.current),
        r.delta_pct
            .map(|d| format!("{d:+.1}"))
            .unwrap_or_else(|| "-".to_string()),
        r.limit.clone(),
        match r.verdict {
            Verdict::Ok => "ok".to_string(),
            Verdict::Breach => "BREACH".to_string(),
        },
    ]
}

/// Evaluates `current` against `baseline` under `rules`.
///
/// Every current-file metric is gated by the *first* rule that matches
/// it, so specific rules should precede catch-alls in a custom rules
/// file.
pub fn evaluate(
    baseline: &[BenchEntry],
    current: &[BenchEntry],
    rules: &[BudgetRule],
    threshold_pct: f64,
) -> BudgetReport {
    let mut rows = Vec::new();
    let mut unmatched = Vec::new();
    for cur in current {
        let base = baseline.iter().find(|b| b.key() == cur.key());
        let mut needed_baseline = false;
        for (metric, cur_v) in &cur.metrics {
            let Some(rule) = rules.iter().find(|r| r.matches(&cur.experiment, metric)) else {
                continue;
            };
            match rule.kind {
                RuleKind::MaxValue => {
                    rows.push(BudgetRow {
                        entry: cur.label(),
                        metric: metric.clone(),
                        baseline: None,
                        current: *cur_v,
                        delta_pct: None,
                        limit: rule.limit_text(),
                        verdict: if *cur_v > rule.limit {
                            Verdict::Breach
                        } else {
                            Verdict::Ok
                        },
                    });
                }
                RuleKind::MaxRegressionPct | RuleKind::MaxDropPct => {
                    let Some(base) = base else {
                        needed_baseline = true;
                        continue;
                    };
                    let Some((_, base_v)) = base.metrics.iter().find(|(n, _)| n == metric) else {
                        continue;
                    };
                    let delta_pct = (*base_v != 0.0).then(|| 100.0 * (cur_v - base_v) / base_v);
                    let breached = match rule.kind {
                        RuleKind::MaxRegressionPct => *cur_v > base_v * (1.0 + rule.limit / 100.0),
                        _ => *cur_v < base_v * (1.0 - rule.limit / 100.0),
                    };
                    rows.push(BudgetRow {
                        entry: cur.label(),
                        metric: metric.clone(),
                        baseline: Some(*base_v),
                        current: *cur_v,
                        delta_pct,
                        limit: rule.limit_text(),
                        verdict: if breached {
                            Verdict::Breach
                        } else {
                            Verdict::Ok
                        },
                    });
                }
            }
        }
        if needed_baseline {
            unmatched.push(cur.label());
        }
    }
    BudgetReport {
        rows,
        threshold_pct,
        unmatched,
    }
}

/// The `--bless` payload: the current entries worth baselining — those
/// with at least one metric gated by a *relative* rule (absolute-ceiling
/// rules need no baseline).
pub fn blessable<'a>(current: &'a [BenchEntry], rules: &[BudgetRule]) -> Vec<&'a BenchEntry> {
    current
        .iter()
        .filter(|e| {
            e.metrics.iter().any(|(name, _)| {
                rules
                    .iter()
                    .find(|r| r.matches(&e.experiment, name))
                    .is_some_and(|r| r.kind != RuleKind::MaxValue)
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const LINE: &str = "{\"experiment\": \"dense_city_scaling\", \"quick\": true, \
         \"threads\": 8, \"cells\": 3, \"wall_ms\": 42.5, \"metrics\": \
         {\"sensed_ns_100\": 236.2, \"sensed_nocull_ns_100\": 485.8, \
         \"broken\": null, \"sensed_flatness\": 1.74}}";

    const SHARDED: &str = "{\"experiment\": \"multi_node\", \"quick\": true, \
         \"shard\": \"1/2\", \"threads\": 1, \"cells\": 3, \"wall_ms\": 9.5, \
         \"metrics\": {\"mean_aggregate_pdr\": 0.92, \"quarantined_cells\": 0}}";

    fn file(lines: &[&str]) -> Vec<BenchEntry> {
        parse_bench_file(&format!("[\n{}\n]\n", lines.join(",\n")))
    }

    #[test]
    fn parses_recorder_lines() {
        let entries = file(&[LINE, LINE]);
        assert_eq!(entries.len(), 2);
        let e = &entries[0];
        assert_eq!(e.experiment, "dense_city_scaling");
        assert!(e.quick);
        assert_eq!(e.shard, None);
        // `null` metrics are dropped; finite ones keep their values —
        // including the final metric, right against the closing braces.
        assert_eq!(
            e.metrics,
            vec![
                ("sensed_ns_100".to_string(), 236.2),
                ("sensed_nocull_ns_100".to_string(), 485.8),
                ("sensed_flatness".to_string(), 1.74),
            ]
        );
    }

    #[test]
    fn shard_tags_key_records_apart() {
        let entries = file(&[SHARDED, &SHARDED.replace("1/2", "2/2")]);
        assert_eq!(entries[0].shard.as_deref(), Some("1/2"));
        assert_eq!(entries[0].label(), "multi_node[1/2]:quick");
        assert_ne!(entries[0].key(), entries[1].key());
        // A sharded current entry only matches the same shard's baseline.
        let report = evaluate(
            &file(&[SHARDED]),
            &file(&[&SHARDED.replace("1/2", "2/2")]),
            &default_rules(25.0),
            25.0,
        );
        assert!(report.rows.iter().all(|r| r.metric == "quarantined_cells"));
        assert_eq!(report.unmatched, vec!["multi_node[2/2]:quick".to_string()]);
    }

    #[test]
    fn default_rules_reproduce_the_bench_compare_gate() {
        let rules = default_rules(25.0);
        let gated = |exp: &str, metric: &str| {
            rules
                .iter()
                .find(|r| r.matches(exp, metric))
                .map(|r| r.kind)
        };
        assert_eq!(
            gated("dense_city_scaling", "sensed_ns_100"),
            Some(RuleKind::MaxRegressionPct)
        );
        assert_eq!(
            gated("medium_microbench", "medium_sensed_power_8tx_ns_per_iter"),
            Some(RuleKind::MaxRegressionPct)
        );
        assert_eq!(gated("dense_city_scaling", "sensed_nocull_ns_100"), None);
        assert_eq!(gated("dense_city_scaling", "sensed_flatness"), None);
        assert_eq!(gated("dense_city_scaling", "run_ms_100"), None);
        assert_eq!(
            gated("multi_node", "mean_aggregate_pdr"),
            Some(RuleKind::MaxDropPct)
        );
        assert_eq!(
            gated("robustness_sweep", "worst_rate_utilization"),
            Some(RuleKind::MaxDropPct)
        );
        assert_eq!(
            gated("anything", "quarantined_cells"),
            Some(RuleKind::MaxValue)
        );
    }

    #[test]
    fn latency_regression_breaches_and_names_the_metric() {
        let baseline = file(&[LINE]);
        let current = file(&[&LINE.replace("236.2", "400.0")]);
        let report = evaluate(&baseline, &current, &default_rules(25.0), 25.0);
        let breaches = report.breach_lines();
        assert_eq!(breaches.len(), 1);
        assert!(breaches[0].contains("sensed_ns_100"), "{breaches:?}");
        assert!(breaches[0].contains("+69.3%"), "{breaches:?}");
        assert!(report.render_text().contains("FAIL"));
        assert!(report.render_markdown().contains("**FAIL**"));
    }

    #[test]
    fn improvement_and_nocull_growth_pass() {
        let baseline = file(&[LINE]);
        // Gated metric improves; the exempt nocull column explodes.
        let current = file(&[&LINE.replace("236.2", "100.0").replace("485.8", "9999.0")]);
        let report = evaluate(&baseline, &current, &default_rules(25.0), 25.0);
        assert!(report.breaches().is_empty(), "{:?}", report.breach_lines());
        assert!(report.render_text().contains("PASS"));
    }

    #[test]
    fn throughput_floor_and_quarantine_ceiling() {
        let baseline = file(&[SHARDED]);
        let dropped = SHARDED
            .replace("0.92", "0.80")
            .replace("\"quarantined_cells\": 0", "\"quarantined_cells\": 2");
        let current = file(&[&dropped]);
        let report = evaluate(&baseline, &current, &default_rules(25.0), 25.0);
        let breaches = report.breach_lines();
        assert_eq!(breaches.len(), 2, "{breaches:?}");
        assert!(breaches.iter().any(|b| b.contains("mean_aggregate_pdr")));
        assert!(breaches.iter().any(|b| b.contains("quarantined_cells")));
        // The ceiling row needs no baseline.
        let report = evaluate(&[], &current, &default_rules(25.0), 25.0);
        assert_eq!(report.breach_lines().len(), 1);
        assert!(report.breach_lines()[0].contains("quarantined_cells"));
    }

    #[test]
    fn rules_file_round_trip() {
        let text = r#"[
  {"experiment": "medium_microbench", "metric": "_ns", "exclude": "nocull",
   "rule": "max_regression_pct", "limit": 10},
  {"metric": "quarantined_cells", "rule": "max_value", "limit": 0}
]"#;
        let rules = parse_rules(text).unwrap();
        assert_eq!(rules.len(), 2);
        assert_eq!(rules[0].kind, RuleKind::MaxRegressionPct);
        assert_eq!(rules[0].limit, 10.0);
        assert_eq!(rules[0].exclude, "nocull");
        assert_eq!(rules[1].kind, RuleKind::MaxValue);
        assert_eq!(rules[1].experiment, "");

        assert!(parse_rules("[]").is_err());
        assert!(parse_rules("[{\"rule\": \"warp\", \"limit\": 1}]").is_err());
        assert!(parse_rules("[{\"metric\": \"x\"}]").is_err());
    }

    #[test]
    fn bless_selects_relative_rule_targets_only() {
        let no_gated = "{\"experiment\": \"cti_accuracy\", \"quick\": false, \
             \"threads\": 1, \"cells\": 4, \"wall_ms\": 18.5, \"metrics\": {}}";
        let entries = file(&[LINE, SHARDED, no_gated]);
        let names: Vec<String> = blessable(&entries, &default_rules(25.0))
            .iter()
            .map(|e| e.label())
            .collect();
        assert_eq!(
            names,
            vec!["dense_city_scaling:quick", "multi_node[1/2]:quick"]
        );
    }
}
