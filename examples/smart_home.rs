//! A smart-home evening: a ZigBee sensor network sharing the air with a
//! busy Wi-Fi access point.
//!
//! The scenario the paper's introduction motivates: periodic sensor
//! reports (small bursts) plus occasional firmware-chunk uploads (long
//! bursts) must coexist with a Wi-Fi link that is effectively saturated.
//! The example runs each traffic profile from every Fig. 6 location and
//! shows how BiCord's learned white spaces track the burst length.
//!
//! ```text
//! cargo run --example smart_home
//! ```

use bicord::metrics::table::{fmt1, pct, TextTable};
use bicord::scenario::config::SimConfig;
use bicord::scenario::geometry::Location;
use bicord::scenario::sim::CoexistenceSim;
use bicord::sim::SimDuration;
use bicord::workloads::traffic::{ArrivalProcess, BurstSpec};

struct Profile {
    name: &'static str,
    burst: BurstSpec,
    interval: SimDuration,
}

fn main() {
    let profiles = [
        Profile {
            name: "sensor reports",
            burst: BurstSpec {
                n_packets: 3,
                mpdu_bytes: 30,
            },
            interval: SimDuration::from_millis(500),
        },
        Profile {
            name: "motion events",
            burst: BurstSpec {
                n_packets: 5,
                mpdu_bytes: 50,
            },
            interval: SimDuration::from_millis(200),
        },
        Profile {
            name: "firmware chunks",
            burst: BurstSpec {
                n_packets: 12,
                mpdu_bytes: 100,
            },
            interval: SimDuration::from_secs(1),
        },
    ];

    let mut table = TextTable::new(vec![
        "profile",
        "location",
        "PDR",
        "mean delay",
        "white space",
        "signaling rounds",
    ]);
    table.title("Smart home: ZigBee traffic profiles under a saturated Wi-Fi AP (BiCord)");

    for profile in &profiles {
        for location in Location::all() {
            let mut config = SimConfig::bicord(location, 21);
            config.duration = SimDuration::from_secs(12);
            config.zigbee.burst = profile.burst;
            config.zigbee.arrivals = ArrivalProcess::Poisson(profile.interval);
            let r = CoexistenceSim::new(config).unwrap().run();
            table.row(vec![
                profile.name.to_string(),
                location.label().to_string(),
                pct(r.zigbee_pdr()),
                r.zigbee
                    .mean_delay_ms
                    .map(|d| format!("{} ms", fmt1(d)))
                    .unwrap_or_else(|| "-".to_string()),
                format!("{} ms", fmt1(r.allocation.final_estimate_ms)),
                r.zigbee.signaling_rounds.to_string(),
            ]);
        }
    }

    println!("{table}");
    println!("Longer bursts teach the Wi-Fi device to open longer white spaces;");
    println!("location changes only the signaling reliability, not the mechanism.");
}
