//! Mobility stress test (the paper's Sec. VIII-F): a person walking
//! through the office, and a ZigBee sender that is itself moving.
//!
//! ```text
//! cargo run --example mobile_office
//! ```

use bicord::metrics::table::{fmt1, pct, TextTable};
use bicord::scenario::experiments::{fig12_mobility, MobilityScenario};
use bicord::sim::SimDuration;

fn main() {
    let duration = SimDuration::from_secs(15);
    println!("Simulating static / person-mobility / device-mobility scenarios...");
    let rows = fig12_mobility(5, duration);

    let mut table = TextTable::new(vec![
        "scenario",
        "burst interval",
        "utilization",
        "mean ZigBee delay",
    ]);
    table.title("Mobile office (BiCord, bursts of 5 x 50 B)");
    for row in &rows {
        table.row(vec![
            row.scenario.label().to_string(),
            format!("{} ms", row.interval_ms),
            pct(row.utilization),
            row.mean_delay_ms
                .map(|d| format!("{} ms", fmt1(d)))
                .unwrap_or_else(|| "-".to_string()),
        ]);
    }
    println!("{table}");

    // The paper's observation: mobility costs at most a few percent of
    // utilization.
    let static_util: f64 = rows
        .iter()
        .filter(|r| r.scenario == MobilityScenario::Static)
        .map(|r| r.utilization)
        .sum::<f64>()
        / 2.0;
    let worst_mobile = rows
        .iter()
        .filter(|r| r.scenario != MobilityScenario::Static)
        .map(|r| r.utilization)
        .fold(f64::MAX, f64::min);
    println!(
        "utilization drop vs static: at most {:.1} percentage points (paper: <= 9)",
        (static_util - worst_mobile) * 100.0
    );
}
