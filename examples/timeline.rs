//! Render the channel timeline of a BiCord run — the picture the paper
//! draws in Fig. 2/4/5, regenerated from a live simulation.
//!
//! ```text
//! cargo run --example timeline
//! ```

use bicord::prelude::*;
use bicord::scenario::trace::SpanKind;
use bicord::sim::SimTime;

fn main() {
    let config = SimConfig::builder()
        .location(Location::A)
        .seed(9)
        .duration(SimDuration::from_secs(3))
        .burst(8, 50)
        .arrivals(ArrivalProcess::Periodic(SimDuration::from_millis(250)))
        .record_trace(true)
        .build()
        .expect("valid config");

    println!("Running BiCord with tracing for {}...", config.duration);
    // Capture the structured event stream alongside the channel trace.
    let mut sink = VecSink::new();
    let results = CoexistenceSim::with_sink(config, &mut sink)
        .expect("valid config")
        .run();
    let trace = results.trace.as_ref().expect("tracing was enabled");

    // Zoom into a window containing a full coordination round: find the
    // first white space after the allocator has had a burst to learn from.
    let ws = trace
        .spans()
        .iter()
        .filter(|s| s.kind == SpanKind::WhiteSpace)
        .nth(3)
        .expect("at least four reservations");
    let from = ws
        .start
        .saturating_since(SimTime::ZERO + SimDuration::from_millis(30));
    let from = SimTime::ZERO + from;
    let to = ws.end + SimDuration::from_millis(30);

    println!();
    println!("one coordination round (legend: # wifi data, ^ zigbee control,");
    println!("| CTS, _ white space, = zigbee data+ack):");
    println!();
    print!("{}", trace.render(from, to, 100));
    println!();
    println!(
        "full run: {} spans recorded; white-space airtime {} of {}",
        trace.len(),
        trace.airtime(
            SpanKind::WhiteSpace,
            SimTime::ZERO,
            SimTime::ZERO + results.simulated
        ),
        results.simulated,
    );
    println!(
        "utilization {:.1}%, ZigBee PDR {:.1}%, mean delay {:.1} ms",
        results.utilization * 100.0,
        results.zigbee_pdr() * 100.0,
        results.zigbee.mean_delay_ms.unwrap_or(f64::NAN),
    );
    println!(
        "event stream: {} records ({} detections, {} requests, {} reservations, {} estimates)",
        sink.events.len(),
        sink.of_kind("detection").len(),
        sink.of_kind("channel_request").len(),
        sink.of_kind("reservation").len(),
        sink.of_kind("estimate").len(),
    );
}
