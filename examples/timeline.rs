//! Render the channel timeline of a BiCord run — the picture the paper
//! draws in Fig. 2/4/5, regenerated from a live simulation.
//!
//! ```text
//! cargo run --example timeline
//! ```

use bicord::scenario::config::SimConfig;
use bicord::scenario::geometry::Location;
use bicord::scenario::sim::CoexistenceSim;
use bicord::scenario::trace::SpanKind;
use bicord::sim::{SimDuration, SimTime};
use bicord::workloads::traffic::{ArrivalProcess, BurstSpec};

fn main() {
    let mut config = SimConfig::bicord(Location::A, 9);
    config.duration = SimDuration::from_secs(3);
    config.zigbee.burst = BurstSpec {
        n_packets: 8,
        mpdu_bytes: 50,
    };
    config.zigbee.arrivals = ArrivalProcess::Periodic(SimDuration::from_millis(250));
    config.record_trace = true;

    println!("Running BiCord with tracing for {}...", config.duration);
    let results = CoexistenceSim::new(config).run();
    let trace = results.trace.as_ref().expect("tracing was enabled");

    // Zoom into a window containing a full coordination round: find the
    // first white space after the allocator has had a burst to learn from.
    let ws = trace
        .spans()
        .iter()
        .filter(|s| s.kind == SpanKind::WhiteSpace)
        .nth(3)
        .expect("at least four reservations");
    let from = ws
        .start
        .saturating_since(SimTime::ZERO + SimDuration::from_millis(30));
    let from = SimTime::ZERO + from;
    let to = ws.end + SimDuration::from_millis(30);

    println!();
    println!("one coordination round (legend: # wifi data, ^ zigbee control,");
    println!("| CTS, _ white space, = zigbee data+ack):");
    println!();
    print!("{}", trace.render(from, to, 100));
    println!();
    println!(
        "full run: {} spans recorded; white-space airtime {} of {}",
        trace.len(),
        trace.airtime(
            SpanKind::WhiteSpace,
            SimTime::ZERO,
            SimTime::ZERO + results.simulated
        ),
        results.simulated,
    );
    println!(
        "utilization {:.1}%, ZigBee PDR {:.1}%, mean delay {:.1} ms",
        results.utilization * 100.0,
        results.zigbee_pdr() * 100.0,
        results.zigbee.mean_delay_ms.unwrap_or(f64::NAN),
    );
}
