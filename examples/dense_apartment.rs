//! A dense apartment: three heterogeneous ZigBee pairs, a Bluetooth
//! speaker, and one saturated Wi-Fi link — everything this reproduction
//! models, in one pot.
//!
//! ```text
//! cargo run --example dense_apartment
//! ```

use bicord::metrics::table::{fmt1, pct, TextTable};
use bicord::scenario::config::{BluetoothConfig, ExtraNodeConfig, SimConfig};
use bicord::scenario::geometry::Location;
use bicord::scenario::sim::CoexistenceSim;
use bicord::sim::SimDuration;
use bicord::workloads::traffic::{ArrivalProcess, BurstSpec};

fn main() {
    let duration = SimDuration::from_secs(12);

    let build = |bicord: bool| {
        let mut config = if bicord {
            SimConfig::bicord(Location::A, 77)
        } else {
            SimConfig::ecc(Location::A, 77, SimDuration::from_millis(30))
        };
        config.duration = duration;
        // Node 0 at A: motion sensors (5 x 50 B every ~300 ms).
        config.zigbee.arrivals = ArrivalProcess::Poisson(SimDuration::from_millis(300));
        // Node 1 at C: a smart meter streaming 10-packet readings.
        let mut meter = ExtraNodeConfig::at(Location::C);
        meter.burst = BurstSpec {
            n_packets: 10,
            mpdu_bytes: 50,
        };
        meter.arrivals = ArrivalProcess::Poisson(SimDuration::from_millis(600));
        config.extra_nodes.push(meter);
        // Node 2 at D: a door lock with tiny sporadic bursts.
        let mut lock = ExtraNodeConfig::at(Location::D);
        lock.burst = BurstSpec {
            n_packets: 2,
            mpdu_bytes: 30,
        };
        lock.arrivals = ArrivalProcess::Poisson(SimDuration::from_millis(900));
        config.extra_nodes.push(lock);
        // A Bluetooth speaker near the middle of the room.
        config.bluetooth = Some(BluetoothConfig::default());
        config
    };

    let mut table = TextTable::new(vec![
        "scheme",
        "device",
        "PDR",
        "mean delay",
        "signaling rounds",
    ]);
    table.title("Dense apartment: 3 ZigBee devices + Bluetooth + saturated Wi-Fi");

    for (label, bicord) in [("BiCord", true), ("ECC-30ms", false)] {
        let results = CoexistenceSim::new(build(bicord)).unwrap().run();
        let names = ["motion sensors (A)", "smart meter (C)", "door lock (D)"];
        for (i, node) in results.per_node.iter().enumerate() {
            table.row(vec![
                label.to_string(),
                names[i].to_string(),
                pct(node.delivered as f64 / node.generated.max(1) as f64),
                node.mean_delay_ms
                    .map(|d| format!("{} ms", fmt1(d)))
                    .unwrap_or_else(|| "-".to_string()),
                node.signaling_rounds.to_string(),
            ]);
        }
        println!(
            "{label}: total utilization {}, aggregate delay {} ms",
            pct(results.utilization),
            results
                .zigbee
                .mean_delay_ms
                .map(fmt1)
                .unwrap_or_else(|| "-".into()),
        );
    }
    println!();
    println!("{table}");
    println!("Every device keeps its data flowing; the Bluetooth speaker is correctly");
    println!("ignored by the CTI classifier (it never earns a white space).");
}
