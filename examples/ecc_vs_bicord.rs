//! Head-to-head: BiCord against the ECC baseline and unprotected CSMA.
//!
//! Reproduces the core claim of the paper's Fig. 10 at one traffic
//! intensity: on-demand, right-sized white spaces beat blind periodic ones
//! on utilization, delay, and delivery — and both beat no coordination.
//!
//! ```text
//! cargo run --example ecc_vs_bicord
//! ```

use bicord::metrics::table::{fmt1, pct, TextTable};
use bicord::scenario::config::SimConfig;
use bicord::scenario::geometry::Location;
use bicord::scenario::sim::CoexistenceSim;
use bicord::sim::SimDuration;
use bicord::workloads::traffic::ArrivalProcess;

fn main() {
    let duration = SimDuration::from_secs(15);
    let interval = SimDuration::from_millis(400);
    let seed = 7;

    let mut configs: Vec<(&str, SimConfig)> = vec![
        ("BiCord", SimConfig::bicord(Location::A, seed)),
        (
            "ECC-20ms",
            SimConfig::ecc(Location::A, seed, SimDuration::from_millis(20)),
        ),
        (
            "ECC-30ms",
            SimConfig::ecc(Location::A, seed, SimDuration::from_millis(30)),
        ),
        (
            "ECC-40ms",
            SimConfig::ecc(Location::A, seed, SimDuration::from_millis(40)),
        ),
        ("none", SimConfig::unprotected(Location::A, seed)),
    ];

    let mut table = TextTable::new(vec![
        "scheme",
        "utilization",
        "ZigBee PDR",
        "mean delay",
        "throughput",
    ]);
    table.title(format!(
        "BiCord vs ECC vs unprotected — bursts of 5 x 50 B every ~{} (Poisson), {} run",
        interval, duration
    ));

    for (label, config) in configs.iter_mut() {
        config.duration = duration;
        config.zigbee.arrivals = ArrivalProcess::Poisson(interval);
        let r = CoexistenceSim::new(config.clone()).unwrap().run();
        table.row(vec![
            label.to_string(),
            pct(r.utilization),
            pct(r.zigbee_pdr()),
            r.zigbee
                .mean_delay_ms
                .map(|d| format!("{} ms", fmt1(d)))
                .unwrap_or_else(|| "-".to_string()),
            format!("{} kb/s", fmt1(r.zigbee.throughput_kbps)),
        ]);
    }

    println!("{table}");
    println!("BiCord reserves only when asked and exactly as much as the burst needs;");
    println!("ECC wastes reservations nobody uses and splits bursts across periods.");
}
