//! Prioritised Wi-Fi traffic (the paper's Sec. VIII-G): the Wi-Fi device
//! streams video part of the time and ignores ZigBee requests while doing
//! so; the rest is delay-tolerant file transfer that yields.
//!
//! ```text
//! cargo run --example priority_streaming
//! ```

use bicord::metrics::table::{fmt1, pct, TextTable};
use bicord::scenario::experiments::{fig13_priority, Scheme};
use bicord::sim::SimDuration;

fn main() {
    let duration = SimDuration::from_secs(10);
    println!("Sweeping the high-priority share of Wi-Fi traffic from 10% to 50%...");
    let rows = fig13_priority(11, duration);

    let mut table = TextTable::new(vec![
        "high-prio share",
        "scheme",
        "utilization",
        "ZigBee share",
        "low-prio Wi-Fi delay",
        "ignored requests",
    ]);
    table.title("Wi-Fi traffic prioritisation (10 s window, bursts of 5 x 50 B every 200 ms)");
    for row in &rows {
        table.row(vec![
            format!("{:.0}%", row.proportion * 100.0),
            row.scheme.label(),
            pct(row.utilization),
            pct(row.zigbee_utilization),
            row.wifi_low_delay_ms
                .map(|d| format!("{} ms", fmt1(d)))
                .unwrap_or_else(|| "-".to_string()),
            row.ignored_requests.to_string(),
        ]);
    }
    println!("{table}");

    // Aggregate comparison, as the paper summarises it.
    let mean = |scheme: Scheme, f: &dyn Fn(&bicord::scenario::experiments::PriorityRow) -> f64| {
        let vals: Vec<f64> = rows.iter().filter(|r| r.scheme == scheme).map(f).collect();
        vals.iter().sum::<f64>() / vals.len() as f64
    };
    let zb = |r: &bicord::scenario::experiments::PriorityRow| r.zigbee_utilization;
    println!(
        "mean ZigBee share: BiCord {} vs ECC-20ms {} vs ECC-30ms {}",
        pct(mean(Scheme::Bicord, &zb)),
        pct(mean(Scheme::Ecc(20), &zb)),
        pct(mean(Scheme::Ecc(30), &zb)),
    );
    println!("high-priority segments face (nearly) zero extra delay: the device simply");
    println!("ignores requests while streaming — the 'ignored requests' column.");
}
