//! Quickstart: run BiCord in the paper's office scenario and print what
//! happened.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use bicord::prelude::*;

fn main() {
    // A saturated Wi-Fi link (100 B frames at 1 Mb/s) and a ZigBee node at
    // location A sending bursts of five 50 B packets every ~200 ms.
    let config = SimConfig::builder()
        .location(Location::A)
        .seed(42)
        .duration(SimDuration::from_secs(10))
        .build()
        .expect("valid config");

    println!("Running BiCord for {} of virtual time...", config.duration);
    let results = CoexistenceSim::new(config).unwrap().run();

    println!();
    println!("=== BiCord quickstart ===");
    println!("events processed          {}", results.events);
    println!(
        "channel utilization       {:.1}%  (Wi-Fi {:.1}%, ZigBee {:.1}%, overhead {:.1}%)",
        results.utilization * 100.0,
        results.wifi_utilization * 100.0,
        results.zigbee_utilization * 100.0,
        results.overhead_fraction * 100.0,
    );
    println!(
        "ZigBee delivery           {}/{} packets ({:.1}% PDR)",
        results.zigbee.delivered,
        results.zigbee.generated,
        results.zigbee_pdr() * 100.0,
    );
    if let Some(delay) = results.zigbee.mean_delay_ms {
        println!(
            "ZigBee delay              mean {delay:.1} ms, p95 {:.1} ms",
            results.zigbee.p95_delay_ms.unwrap_or(f64::NAN),
        );
    }
    println!(
        "ZigBee throughput         {:.1} kb/s",
        results.zigbee.throughput_kbps
    );
    println!(
        "signaling                 {} rounds, {} control packets",
        results.zigbee.signaling_rounds, results.zigbee.control_packets,
    );
    println!(
        "Wi-Fi white spaces        {} reservations, final estimate {:.1} ms (converged: {})",
        results.wifi.reservations,
        results.allocation.final_estimate_ms,
        results.allocation.converged,
    );
}
