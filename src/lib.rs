//! # BiCord — Bidirectional Coordination among Coexisting Wireless Devices
//!
//! A full reproduction of *BiCord* (Yu et al., IEEE ICDCS 2021): a
//! coordination scheme that lets resource-constrained ZigBee nodes
//! **request** channel time from Wi-Fi devices via cross-technology
//! signaling, and lets Wi-Fi devices **learn** how much white space each
//! ZigBee burst needs and reserve exactly that.
//!
//! The paper's evaluation ran on Intel 5300 NICs and TelosB motes; this
//! workspace substitutes a calibrated discrete-event simulation of the
//! 2.4 GHz band (see `DESIGN.md`) and reimplements every layer from
//! scratch:
//!
//! | Crate | Contents |
//! |---|---|
//! | [`sim`] | deterministic discrete-event engine, virtual time, seeded RNG streams |
//! | [`phy`] | path loss, spectrum, airtime, SINR reception, CSI and interference models |
//! | [`mac`] | 802.11 DCF (with CTS-to-self), 802.15.4 CSMA/CA, the shared medium |
//! | [`core`] | **BiCord itself**: signaling detector, adaptive white-space allocator, CTI detection, coordinator/client state machines, energy model |
//! | [`ctc`] | the ECC baseline and packet-level CTC latency models |
//! | [`workloads`] | burst traffic, Wi-Fi priority schedules, mobility |
//! | [`metrics`] | utilization/delay/throughput/precision-recall and text tables |
//! | [`scenario`] | the Fig. 6 office wiring and one runner per table/figure |
//! | [`sweep`] | the sharded, resumable sweep contract and scenario registry (`bicord sweep`) |
//! | [`analyze`] | trace analytics, trace diffing and perf budgets (`bicord analyze`) |
//!
//! # Quickstart
//!
//! ```
//! use bicord::scenario::config::SimConfig;
//! use bicord::scenario::geometry::Location;
//! use bicord::scenario::sim::CoexistenceSim;
//! use bicord::sim::SimDuration;
//!
//! // Run BiCord for two simulated seconds at location A.
//! let config = SimConfig::builder()
//!     .location(Location::A)
//!     .seed(42)
//!     .duration(SimDuration::from_secs(2))
//!     .build()
//!     .expect("valid config");
//! let results = CoexistenceSim::new(config).unwrap().run();
//!
//! assert!(results.zigbee.delivered > 0);
//! assert!(results.utilization > 0.5);
//! ```
//!
//! The [`prelude`] re-exports the same types for one-line imports:
//!
//! ```
//! use bicord::prelude::*;
//!
//! let config = SimConfig::builder()
//!     .duration(SimDuration::from_secs(2))
//!     .build()
//!     .unwrap();
//! let mut sink = VecSink::new();
//! let results = CoexistenceSim::with_sink(config, &mut sink).unwrap().run();
//! assert_eq!(
//!     sink.of_kind("reservation").len() as u64,
//!     results.wifi.reservations
//! );
//! ```
//!
//! Run `cargo run -p bicord-bench --bin fig10_comparison` (and its
//! siblings) to regenerate every table and figure of the paper; see
//! `EXPERIMENTS.md` for the paper-vs-measured record.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(deprecated)]

pub use bicord_analyze as analyze;
pub use bicord_core as core;
pub use bicord_ctc as ctc;
pub use bicord_mac as mac;
pub use bicord_metrics as metrics;
pub use bicord_phy as phy;
pub use bicord_scenario as scenario;
pub use bicord_sim as sim;
pub use bicord_sweep as sweep;
pub use bicord_workloads as workloads;

/// One-line import of everything a typical simulation script needs:
/// configuration (builder, presets, errors), the runtime, event sinks,
/// and the few value types that appear in every config.
pub mod prelude {
    pub use bicord_metrics::registry::{CountingSink, MetricsRegistry};
    pub use bicord_phy::units::Dbm;
    pub use bicord_scenario::config::{
        ConfigError, ExtraNodeConfig, Mode, RunResults, SimConfig, SimConfigBuilder,
    };
    pub use bicord_scenario::geometry::Location;
    pub use bicord_scenario::sim::CoexistenceSim;
    pub use bicord_sim::obs::{
        EventSink, JsonlSink, NoopSink, TraceEvent, TraceHeader, VecSink, TRACE_SCHEMA,
    };
    pub use bicord_sim::{FaultInjector, FaultProfile, SimDuration, SimTime};
    pub use bicord_workloads::traffic::{ArrivalProcess, BurstSpec};
}
