//! `bicord` — command-line runner for coexistence scenarios.
//!
//! ```text
//! bicord [OPTIONS]
//!
//! OPTIONS:
//!   --mode <bicord|ecc-20|ecc-30|ecc-40|unprotected>   coordination scheme [bicord]
//!   --location <A|B|C|D>        ZigBee sender location (Fig. 6)       [A]
//!   --seconds <N>               simulated duration                    [10]
//!   --seed <N>                  master seed                           [42]
//!   --burst <N>                 packets per ZigBee burst              [5]
//!   --bytes <N>                 MPDU bytes per packet                 [50]
//!   --interval-ms <N>           mean Poisson burst interval           [200]
//!   --extra-node <LOC:BURST:INTERVAL_MS>   add a ZigBee pair (repeatable)
//!   --fault-profile <K=V,...>   inject faults: control-loss, cts-loss,
//!                               csi-fp, churn-ms, churn-m
//!   --timeline                  print an ASCII channel timeline
//!   --trace <PATH>              write a JSONL event timeline (docs/OBSERVABILITY.md)
//!   --help                      this text
//! ```
//!
//! Example:
//!
//! ```text
//! bicord --mode ecc-30 --location C --seconds 20 --extra-node D:3:400
//! ```

use bicord::prelude::*;
use bicord::sim::SimTime;

#[derive(Debug, Clone, PartialEq)]
struct CliOptions {
    mode: String,
    location: Location,
    seconds: u64,
    seed: u64,
    burst: u32,
    bytes: usize,
    interval_ms: u64,
    extra_nodes: Vec<(Location, u32, u64)>,
    fault: Option<FaultProfile>,
    timeline: bool,
    trace: Option<std::path::PathBuf>,
}

impl Default for CliOptions {
    fn default() -> Self {
        CliOptions {
            mode: "bicord".to_string(),
            location: Location::A,
            seconds: 10,
            seed: 42,
            burst: 5,
            bytes: 50,
            interval_ms: 200,
            extra_nodes: Vec::new(),
            fault: None,
            timeline: false,
            trace: None,
        }
    }
}

fn parse_location(s: &str) -> Result<Location, String> {
    match s.to_ascii_uppercase().as_str() {
        "A" => Ok(Location::A),
        "B" => Ok(Location::B),
        "C" => Ok(Location::C),
        "D" => Ok(Location::D),
        other => Err(format!("unknown location '{other}' (use A, B, C or D)")),
    }
}

fn parse_extra_node(s: &str) -> Result<(Location, u32, u64), String> {
    let parts: Vec<&str> = s.split(':').collect();
    if parts.len() != 3 {
        return Err(format!(
            "--extra-node wants LOC:BURST:INTERVAL_MS, got '{s}'"
        ));
    }
    let location = parse_location(parts[0])?;
    let burst: u32 = parts[1]
        .parse()
        .map_err(|_| format!("bad burst count '{}'", parts[1]))?;
    let interval: u64 = parts[2]
        .parse()
        .map_err(|_| format!("bad interval '{}'", parts[2]))?;
    Ok((location, burst, interval))
}

fn parse_fault_profile(s: &str) -> Result<FaultProfile, String> {
    let mut profile = FaultProfile::default();
    for pair in s.split(',').filter(|p| !p.is_empty()) {
        let (key, value) = pair
            .split_once('=')
            .ok_or_else(|| format!("--fault-profile wants KEY=VALUE pairs, got '{pair}'"))?;
        let number: f64 = value
            .parse()
            .map_err(|_| format!("bad value '{value}' for fault knob '{key}'"))?;
        match key {
            "control-loss" => profile.control_loss = number,
            "cts-loss" => profile.cts_loss = number,
            "csi-fp" => profile.csi_false_positive = number,
            "churn-ms" => {
                profile.churn_period = Some(SimDuration::from_millis(number as u64));
            }
            "churn-m" => profile.churn_range_m = number,
            other => {
                return Err(format!(
                    "unknown fault knob '{other}' \
                     (control-loss, cts-loss, csi-fp, churn-ms, churn-m)"
                ))
            }
        }
    }
    if let Some(field) = profile.invalid_field() {
        return Err(format!("fault profile field '{field}' is out of range"));
    }
    Ok(profile)
}

fn parse_args<I: Iterator<Item = String>>(mut args: I) -> Result<CliOptions, String> {
    let mut options = CliOptions::default();
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match arg.as_str() {
            "--mode" => options.mode = value("--mode")?,
            "--location" => options.location = parse_location(&value("--location")?)?,
            "--seconds" => {
                options.seconds = value("--seconds")?
                    .parse()
                    .map_err(|e| format!("--seconds: {e}"))?
            }
            "--seed" => {
                options.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--burst" => {
                options.burst = value("--burst")?
                    .parse()
                    .map_err(|e| format!("--burst: {e}"))?
            }
            "--bytes" => {
                options.bytes = value("--bytes")?
                    .parse()
                    .map_err(|e| format!("--bytes: {e}"))?
            }
            "--interval-ms" => {
                options.interval_ms = value("--interval-ms")?
                    .parse()
                    .map_err(|e| format!("--interval-ms: {e}"))?
            }
            "--extra-node" => options
                .extra_nodes
                .push(parse_extra_node(&value("--extra-node")?)?),
            "--fault-profile" => {
                options.fault = Some(parse_fault_profile(&value("--fault-profile")?)?)
            }
            "--timeline" => options.timeline = true,
            "--trace" => options.trace = Some(std::path::PathBuf::from(value("--trace")?)),
            "--help" | "-h" => return Err("help".to_string()),
            other => return Err(format!("unknown option '{other}' (try --help)")),
        }
    }
    Ok(options)
}

fn build_config(options: &CliOptions) -> Result<SimConfig, String> {
    let mut config = match options.mode.as_str() {
        "bicord" => SimConfig::bicord(options.location, options.seed),
        "ecc-20" => SimConfig::ecc(options.location, options.seed, SimDuration::from_millis(20)),
        "ecc-30" => SimConfig::ecc(options.location, options.seed, SimDuration::from_millis(30)),
        "ecc-40" => SimConfig::ecc(options.location, options.seed, SimDuration::from_millis(40)),
        "unprotected" => SimConfig::unprotected(options.location, options.seed),
        other => {
            return Err(format!(
                "unknown mode '{other}' (bicord, ecc-20, ecc-30, ecc-40, unprotected)"
            ))
        }
    };
    config.duration = SimDuration::from_secs(options.seconds);
    config.zigbee.burst = BurstSpec {
        n_packets: options.burst,
        mpdu_bytes: options.bytes,
    };
    config.zigbee.arrivals = ArrivalProcess::Poisson(SimDuration::from_millis(options.interval_ms));
    for &(location, burst, interval) in &options.extra_nodes {
        let mut node = ExtraNodeConfig::at(location);
        node.burst = BurstSpec {
            n_packets: burst,
            mpdu_bytes: options.bytes,
        };
        node.arrivals = ArrivalProcess::Poisson(SimDuration::from_millis(interval));
        config.extra_nodes.push(node);
    }
    if let Some(fault) = options.fault {
        config.fault = fault;
    }
    config.record_trace = options.timeline;
    Ok(config)
}

fn usage() -> &'static str {
    "bicord — run a Wi-Fi/ZigBee coexistence scenario

USAGE:
  bicord [OPTIONS]

OPTIONS:
  --mode <bicord|ecc-20|ecc-30|ecc-40|unprotected>  scheme      [bicord]
  --location <A|B|C|D>      ZigBee sender location (Fig. 6)     [A]
  --seconds <N>             simulated duration                  [10]
  --seed <N>                master seed                         [42]
  --burst <N>               packets per ZigBee burst            [5]
  --bytes <N>               MPDU bytes per packet               [50]
  --interval-ms <N>         mean Poisson burst interval         [200]
  --extra-node LOC:BURST:INTERVAL_MS  add a ZigBee pair (repeatable)
  --fault-profile K=V,...   inject faults; knobs: control-loss, cts-loss,
                            csi-fp (rates in [0,1]), churn-ms, churn-m
  --timeline                print an ASCII channel timeline
  --trace <PATH>            write a JSONL event timeline (docs/OBSERVABILITY.md)
  --help                    this text"
}

fn main() {
    let options = match parse_args(std::env::args().skip(1)) {
        Ok(o) => o,
        Err(e) if e == "help" => {
            println!("{}", usage());
            return;
        }
        Err(e) => {
            eprintln!("error: {e}\n\n{}", usage());
            std::process::exit(2);
        }
    };
    let config = match build_config(&options) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };

    eprintln!(
        "running {} at {} for {}s (seed {})...",
        options.mode, options.location, options.seconds, options.seed
    );
    let results = match options.trace.as_deref() {
        Some(path) => {
            let header = TraceHeader::new(config.seed, &options.mode, config.duration.as_micros());
            let mut sink = match JsonlSink::create(path, &header) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("error: cannot write trace {}: {e}", path.display());
                    std::process::exit(2);
                }
            };
            let results = match CoexistenceSim::with_sink(config, &mut sink) {
                Ok(sim) => sim.run(),
                Err(e) => {
                    eprintln!("error: {e}");
                    std::process::exit(2);
                }
            };
            match sink.finish() {
                Ok(events) => eprintln!("trace: {} events -> {}", events, path.display()),
                Err(e) => {
                    eprintln!("error: trace write failed: {e}");
                    std::process::exit(2);
                }
            }
            results
        }
        None => match CoexistenceSim::new(config) {
            Ok(sim) => sim.run(),
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(2);
            }
        },
    };

    print!("{}", results.summary_text());

    if let Some(trace) = results.trace.as_ref() {
        let to = SimTime::ZERO
            + results
                .simulated
                .min(bicord::sim::SimDuration::from_secs(1));
        println!();
        println!("first second of channel activity:");
        print!("{}", trace.render(SimTime::ZERO, to, 110));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<CliOptions, String> {
        parse_args(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults_without_args() {
        let o = parse(&[]).unwrap();
        assert_eq!(o, CliOptions::default());
    }

    #[test]
    fn full_argument_set() {
        let o = parse(&[
            "--mode",
            "ecc-30",
            "--location",
            "c",
            "--seconds",
            "20",
            "--seed",
            "7",
            "--burst",
            "10",
            "--bytes",
            "75",
            "--interval-ms",
            "400",
            "--extra-node",
            "D:3:500",
            "--timeline",
        ])
        .unwrap();
        assert_eq!(o.mode, "ecc-30");
        assert_eq!(o.location, Location::C);
        assert_eq!(o.seconds, 20);
        assert_eq!(o.seed, 7);
        assert_eq!(o.burst, 10);
        assert_eq!(o.bytes, 75);
        assert_eq!(o.interval_ms, 400);
        assert_eq!(o.extra_nodes, vec![(Location::D, 3, 500)]);
        assert!(o.timeline);
    }

    #[test]
    fn trace_flag_takes_a_path() {
        let o = parse(&["--trace", "run.jsonl"]).unwrap();
        assert_eq!(o.trace.as_deref(), Some(std::path::Path::new("run.jsonl")));
        assert!(parse(&["--trace"]).is_err());
    }

    #[test]
    fn bad_location_is_an_error() {
        assert!(parse(&["--location", "Z"]).is_err());
    }

    #[test]
    fn missing_value_is_an_error() {
        assert!(parse(&["--seconds"]).is_err());
    }

    #[test]
    fn unknown_flag_is_an_error() {
        assert!(parse(&["--frobnicate"]).is_err());
    }

    #[test]
    fn help_is_special_cased() {
        assert_eq!(parse(&["--help"]).unwrap_err(), "help");
    }

    #[test]
    fn extra_node_validation() {
        assert!(parse_extra_node("D:3:500").is_ok());
        assert!(parse_extra_node("D:3").is_err());
        assert!(parse_extra_node("X:3:500").is_err());
        assert!(parse_extra_node("D:x:500").is_err());
        assert!(parse_extra_node("D:3:y").is_err());
    }

    #[test]
    fn fault_profile_parses_and_validates() {
        let p = parse_fault_profile("control-loss=0.2,cts-loss=0.1,csi-fp=0.05").unwrap();
        assert_eq!(p.control_loss, 0.2);
        assert_eq!(p.cts_loss, 0.1);
        assert_eq!(p.csi_false_positive, 0.05);
        assert_eq!(p.churn_period, None);

        let p = parse_fault_profile("churn-ms=500,churn-m=0.5").unwrap();
        assert_eq!(p.churn_period, Some(SimDuration::from_millis(500)));
        assert_eq!(p.churn_range_m, 0.5);

        assert!(parse_fault_profile("control-loss=1.5").is_err());
        assert!(parse_fault_profile("control-loss").is_err());
        assert!(parse_fault_profile("warp=1").is_err());
        assert!(parse_fault_profile("control-loss=x").is_err());
    }

    #[test]
    fn fault_profile_flag_reaches_the_config() {
        let o = parse(&["--fault-profile", "control-loss=0.3"]).unwrap();
        let c = build_config(&o).unwrap();
        assert_eq!(c.fault.control_loss, 0.3);
        assert!(c.fault.is_active());
        // Without the flag the config keeps the inactive default.
        let c = build_config(&CliOptions::default()).unwrap();
        assert!(!c.fault.is_active());
    }

    #[test]
    fn config_building() {
        let mut o = CliOptions {
            mode: "unprotected".to_string(),
            ..CliOptions::default()
        };
        o.extra_nodes.push((Location::B, 7, 300));
        let c = build_config(&o).unwrap();
        assert_eq!(c.extra_nodes.len(), 1);
        assert_eq!(c.extra_nodes[0].burst.n_packets, 7);
        assert!(matches!(
            c.mode,
            bicord::scenario::config::Mode::Unprotected
        ));
        o.mode = "warp-drive".to_string();
        assert!(build_config(&o).is_err());
    }
}
