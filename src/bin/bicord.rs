//! `bicord` — command-line runner for coexistence scenarios.
//!
//! ```text
//! bicord [OPTIONS]
//! bicord sweep --spec FILE [--shard K/N] [--merge] [--resume] ...
//! bicord analyze <summarize|diff-trace|diff-bench> ...
//!
//! OPTIONS:
//!   --mode <bicord|ecc-20|ecc-30|ecc-40|unprotected>   coordination scheme [bicord]
//!   --location <A|B|C|D>        ZigBee sender location (Fig. 6)       [A]
//!   --seconds <N>               simulated duration                    [10]
//!   --seed <N>                  master seed                           [42]
//!   --burst <N>                 packets per ZigBee burst              [5]
//!   --bytes <N>                 MPDU bytes per packet                 [50]
//!   --interval-ms <N>           mean Poisson burst interval           [200]
//!   --extra-node <LOC:BURST:INTERVAL_MS>   add a ZigBee pair (repeatable)
//!   --fault-profile <K=V,...>   inject faults: control-loss, cts-loss,
//!                               csi-fp, churn-ms, churn-m
//!   --timeline                  print an ASCII channel timeline
//!   --trace <PATH>              write a JSONL event timeline (docs/OBSERVABILITY.md)
//!   --help                      this text
//! ```
//!
//! Example:
//!
//! ```text
//! bicord --mode ecc-30 --location C --seconds 20 --extra-node D:3:400
//! ```
//!
//! The `sweep` subcommand drives the `bicord::sweep` scenario registry
//! from a JSON spec file, optionally as one shard of a distributed run
//! (see README.md § Distributed sweeps and DESIGN.md § The sweep
//! contract):
//!
//! ```text
//! bicord sweep --spec specs/robustness_quick.json --shard 1/2
//! bicord sweep --spec specs/robustness_quick.json --shard 2/2
//! bicord sweep --spec specs/robustness_quick.json --merge
//! ```
//!
//! The `analyze` subcommand is the offline analysis layer
//! (`bicord::analyze`, see docs/ANALYTICS.md): `summarize` a JSONL
//! trace, `diff-trace` two traces, or `diff-bench` a
//! `BENCH_results.json` against a baseline under perf-budget rules:
//!
//! ```text
//! bicord analyze summarize trace.jsonl --assert bursts,utilization
//! bicord analyze diff-trace a.jsonl b.jsonl
//! bicord analyze diff-bench --baseline scripts/bench_baseline.json --out report.md
//! ```

use bicord::prelude::*;
use bicord::sim::SimTime;

#[derive(Debug, Clone, PartialEq)]
struct CliOptions {
    mode: String,
    location: Location,
    seconds: u64,
    seed: u64,
    burst: u32,
    bytes: usize,
    interval_ms: u64,
    extra_nodes: Vec<(Location, u32, u64)>,
    fault: Option<FaultProfile>,
    timeline: bool,
    trace: Option<std::path::PathBuf>,
}

impl Default for CliOptions {
    fn default() -> Self {
        CliOptions {
            mode: "bicord".to_string(),
            location: Location::A,
            seconds: 10,
            seed: 42,
            burst: 5,
            bytes: 50,
            interval_ms: 200,
            extra_nodes: Vec::new(),
            fault: None,
            timeline: false,
            trace: None,
        }
    }
}

fn parse_location(s: &str) -> Result<Location, String> {
    match s.to_ascii_uppercase().as_str() {
        "A" => Ok(Location::A),
        "B" => Ok(Location::B),
        "C" => Ok(Location::C),
        "D" => Ok(Location::D),
        other => Err(format!("unknown location '{other}' (use A, B, C or D)")),
    }
}

fn parse_extra_node(s: &str) -> Result<(Location, u32, u64), String> {
    let parts: Vec<&str> = s.split(':').collect();
    if parts.len() != 3 {
        return Err(format!(
            "--extra-node wants LOC:BURST:INTERVAL_MS, got '{s}'"
        ));
    }
    let location = parse_location(parts[0])?;
    let burst: u32 = parts[1]
        .parse()
        .map_err(|_| format!("bad burst count '{}'", parts[1]))?;
    let interval: u64 = parts[2]
        .parse()
        .map_err(|_| format!("bad interval '{}'", parts[2]))?;
    Ok((location, burst, interval))
}

/// The `--fault-profile` knobs: `(key, what it sets, valid range)`.
/// Error messages are generated from this table so they can never drift
/// from what the parser actually accepts.
const FAULT_KNOBS: &[(&str, &str, &str)] = &[
    ("control-loss", "control-frame loss rate", "[0,1]"),
    ("cts-loss", "CTS loss rate", "[0,1]"),
    ("csi-fp", "phantom-CSI false-positive rate", "[0,1]"),
    ("churn-ms", "coordinator churn period in ms", ">=1"),
    ("churn-m", "churn displacement range in meters", ">=0"),
];

fn fault_knob_names() -> String {
    FAULT_KNOBS
        .iter()
        .map(|(key, _, _)| *key)
        .collect::<Vec<_>>()
        .join(", ")
}

fn parse_fault_profile(s: &str) -> Result<FaultProfile, String> {
    let mut profile = FaultProfile::default();
    for pair in s.split(',').filter(|p| !p.is_empty()) {
        let (key, value) = pair.split_once('=').ok_or_else(|| {
            format!(
                "--fault-profile wants comma-separated KEY=VALUE pairs, got '{pair}' \
                 (valid keys: {}; example: control-loss=0.2,cts-loss=0.1)",
                fault_knob_names()
            )
        })?;
        let knob = FAULT_KNOBS.iter().find(|(k, _, _)| *k == key);
        let Some(&(_, what, range)) = knob else {
            return Err(format!(
                "unknown fault knob '{key}' in '{pair}'; valid keys are {} \
                 (KEY=VALUE, comma-separated)",
                fault_knob_names()
            ));
        };
        let number: f64 = value.parse().map_err(|_| {
            format!("bad value '{value}' for fault knob '{key}' ({what}; want a number in {range})")
        })?;
        match key {
            "control-loss" => profile.control_loss = number,
            "cts-loss" => profile.cts_loss = number,
            "csi-fp" => profile.csi_false_positive = number,
            "churn-ms" => {
                profile.churn_period = Some(SimDuration::from_millis(number as u64));
            }
            "churn-m" => profile.churn_range_m = number,
            _ => unreachable!("key was validated against FAULT_KNOBS"),
        }
    }
    if let Some(field) = profile.invalid_field() {
        let hint = FAULT_KNOBS
            .iter()
            .map(|(key, _, range)| format!("{key} in {range}"))
            .collect::<Vec<_>>()
            .join(", ");
        return Err(format!(
            "fault profile field '{field}' is out of range (valid: {hint})"
        ));
    }
    Ok(profile)
}

fn parse_args<I: Iterator<Item = String>>(mut args: I) -> Result<CliOptions, String> {
    let mut options = CliOptions::default();
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match arg.as_str() {
            "--mode" => options.mode = value("--mode")?,
            "--location" => options.location = parse_location(&value("--location")?)?,
            "--seconds" => {
                options.seconds = value("--seconds")?
                    .parse()
                    .map_err(|e| format!("--seconds: {e}"))?
            }
            "--seed" => {
                options.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--burst" => {
                options.burst = value("--burst")?
                    .parse()
                    .map_err(|e| format!("--burst: {e}"))?
            }
            "--bytes" => {
                options.bytes = value("--bytes")?
                    .parse()
                    .map_err(|e| format!("--bytes: {e}"))?
            }
            "--interval-ms" => {
                options.interval_ms = value("--interval-ms")?
                    .parse()
                    .map_err(|e| format!("--interval-ms: {e}"))?
            }
            "--extra-node" => options
                .extra_nodes
                .push(parse_extra_node(&value("--extra-node")?)?),
            "--fault-profile" => {
                options.fault = Some(parse_fault_profile(&value("--fault-profile")?)?)
            }
            "--timeline" => options.timeline = true,
            "--trace" => options.trace = Some(std::path::PathBuf::from(value("--trace")?)),
            "--help" | "-h" => return Err("help".to_string()),
            other => return Err(format!("unknown option '{other}' (try --help)")),
        }
    }
    Ok(options)
}

fn build_config(options: &CliOptions) -> Result<SimConfig, String> {
    let mut config = match options.mode.as_str() {
        "bicord" => SimConfig::bicord(options.location, options.seed),
        "ecc-20" => SimConfig::ecc(options.location, options.seed, SimDuration::from_millis(20)),
        "ecc-30" => SimConfig::ecc(options.location, options.seed, SimDuration::from_millis(30)),
        "ecc-40" => SimConfig::ecc(options.location, options.seed, SimDuration::from_millis(40)),
        "unprotected" => SimConfig::unprotected(options.location, options.seed),
        other => {
            return Err(format!(
                "unknown mode '{other}' (bicord, ecc-20, ecc-30, ecc-40, unprotected)"
            ))
        }
    };
    config.duration = SimDuration::from_secs(options.seconds);
    config.zigbee.burst = BurstSpec {
        n_packets: options.burst,
        mpdu_bytes: options.bytes,
    };
    config.zigbee.arrivals = ArrivalProcess::Poisson(SimDuration::from_millis(options.interval_ms));
    for &(location, burst, interval) in &options.extra_nodes {
        let mut node = ExtraNodeConfig::at(location);
        node.burst = BurstSpec {
            n_packets: burst,
            mpdu_bytes: options.bytes,
        };
        node.arrivals = ArrivalProcess::Poisson(SimDuration::from_millis(interval));
        config.extra_nodes.push(node);
    }
    if let Some(fault) = options.fault {
        config.fault = fault;
    }
    config.record_trace = options.timeline;
    Ok(config)
}

/// Options of the `bicord sweep` subcommand.
#[derive(Debug, Clone, PartialEq)]
struct SweepOptions {
    spec: Option<std::path::PathBuf>,
    shard: Option<bicord::sweep::Shard>,
    merge: bool,
    resume: bool,
    out_dir: std::path::PathBuf,
    threads: Option<usize>,
    list_scenarios: bool,
    cell_timeout: Option<std::time::Duration>,
    max_retries: u32,
}

impl Default for SweepOptions {
    fn default() -> Self {
        let policy = bicord::sweep::RunPolicy::default();
        SweepOptions {
            spec: None,
            shard: None,
            merge: false,
            resume: false,
            out_dir: std::path::PathBuf::from("sweep_out"),
            threads: None,
            list_scenarios: false,
            cell_timeout: policy.cell_timeout,
            max_retries: policy.max_retries,
        }
    }
}

fn parse_sweep_args<I: Iterator<Item = String>>(mut args: I) -> Result<SweepOptions, String> {
    let mut options = SweepOptions::default();
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match arg.as_str() {
            "--spec" => options.spec = Some(std::path::PathBuf::from(value("--spec")?)),
            "--shard" => {
                options.shard = Some(
                    bicord::sweep::Shard::parse(&value("--shard")?)
                        .map_err(|e| format!("--shard: {e}"))?,
                )
            }
            "--merge" => options.merge = true,
            "--resume" => options.resume = true,
            "--out-dir" => options.out_dir = std::path::PathBuf::from(value("--out-dir")?),
            "--threads" => {
                let n: usize = value("--threads")?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?;
                if n == 0 {
                    return Err("--threads wants at least 1".to_string());
                }
                options.threads = Some(n);
            }
            "--cell-timeout" => {
                let secs: f64 = value("--cell-timeout")?
                    .parse()
                    .map_err(|e| format!("--cell-timeout: {e}"))?;
                if !secs.is_finite() || secs <= 0.0 {
                    return Err("--cell-timeout wants a positive number of seconds".to_string());
                }
                options.cell_timeout = Some(std::time::Duration::from_secs_f64(secs));
            }
            "--max-retries" => {
                options.max_retries = value("--max-retries")?
                    .parse()
                    .map_err(|e| format!("--max-retries: {e}"))?;
            }
            "--list-scenarios" => options.list_scenarios = true,
            "--help" | "-h" => return Err("help".to_string()),
            other => return Err(format!("unknown option '{other}' (try --help)")),
        }
    }
    if !options.list_scenarios && options.spec.is_none() {
        return Err("sweep needs --spec FILE (or --list-scenarios)".to_string());
    }
    if options.resume && options.spec.is_none() {
        return Err("--resume needs --spec".to_string());
    }
    Ok(options)
}

fn sweep_usage() -> &'static str {
    "bicord sweep — run/merge a sweep of a registered scenario

USAGE:
  bicord sweep --spec FILE [OPTIONS]
  bicord sweep --list-scenarios

OPTIONS:
  --spec FILE        JSON sweep spec (scenario, seed, replicates, axes)
  --shard K/N        run only shard K of N (1-based); omit for the whole
                     sweep in one process
  --merge            reduce the shard artifacts into merged.json; alone
                     it only merges, after --shard it runs then merges
  --resume           keep valid existing artifacts, re-run missing or
                     corrupt shards only
  --out-dir DIR      artifact directory                        [sweep_out]
  --threads N        worker threads (sets BICORD_THREADS)
  --cell-timeout S   wall-clock seconds per cell before the cell is
                     abandoned and quarantined (fractions allowed; no
                     timeout by default)
  --max-retries N    re-runs per failed cell before quarantine    [1]
  --list-scenarios   print the scenario registry and exit
  --help             this text

Failed cells (panic, guard stall, or timeout) are retried with the same
seed and, if they keep failing, quarantined: the shard artifact lists
them, a quarantine-cell-*.json records the cause, and the exit code is 3.
`--resume` re-runs only quarantined/invalid cells; `--merge` refuses to
reduce a sweep with quarantined cells and names them."
}

/// Runs the `sweep` subcommand; returns the process exit code.
fn run_sweep(options: &SweepOptions) -> i32 {
    use bicord::sweep::{
        merge, rows_table, run_shard_supervised, RunPolicy, ScenarioRegistry, Shard,
    };

    if let Some(n) = options.threads {
        std::env::set_var("BICORD_THREADS", n.to_string());
    }
    let registry = std::sync::Arc::new(ScenarioRegistry::builtin());
    if options.list_scenarios {
        for scenario in registry.iter() {
            println!("{} — {}", scenario.name, scenario.description);
            for p in &scenario.params {
                let default = p
                    .default
                    .as_ref()
                    .map(|d| format!(" [{d}]"))
                    .unwrap_or_else(|| " (required)".to_string());
                println!("  {} <{}>{default}  {}", p.name, p.kind, p.help);
            }
        }
        return 0;
    }

    let spec_path = options.spec.as_deref().expect("checked by the parser");
    let policy = RunPolicy {
        cell_timeout: options.cell_timeout,
        max_retries: options.max_retries,
        ..RunPolicy::default()
    };
    // 0 = clean, 3 = the shard completed but some cells are quarantined.
    let run = || -> Result<i32, bicord::sweep::SweepError> {
        let spec = registry.resolve(&bicord::sweep::load_spec(spec_path)?)?;
        let hash = spec.content_hash();
        let mut rows = None;
        let mut quarantined = 0usize;

        if options.shard.is_some() || !options.merge {
            let shard = options.shard.unwrap_or(Shard::SINGLE);
            eprintln!(
                "sweep: {} spec {hash}, shard {shard} ({} of {} cells), out {}",
                spec.scenario,
                shard.contains_count(spec.cell_count()),
                spec.cell_count(),
                options.out_dir.display(),
            );
            let outcome = run_shard_supervised(
                &registry,
                &spec,
                shard,
                &options.out_dir,
                options.resume,
                &policy,
            )?;
            eprintln!(
                "sweep: shard {shard}: {} cells run, {} resumed -> {}",
                outcome.cells_run,
                outcome.cells_skipped,
                outcome.artifact.display()
            );
            if !outcome.quarantined.is_empty() {
                eprintln!(
                    "sweep: shard {shard}: {} cells QUARANTINED {:?}; \
                     see quarantine-cell-*.json, then re-run with --resume",
                    outcome.quarantined.len(),
                    outcome.quarantined
                );
                quarantined = outcome.quarantined.len();
            }
            if let Some(merged) = &outcome.merged {
                eprintln!("sweep: merged results: {}", merged.display());
            }
            rows = Some((
                format!("{} — spec {hash} shard {shard}", spec.scenario),
                outcome.rows,
            ));
        }

        if options.merge {
            let (path, merged_rows) = merge(&spec, &options.out_dir)?;
            eprintln!(
                "sweep: merged {} cells -> {}",
                merged_rows.len(),
                path.display()
            );
            rows = Some((
                format!("{} — spec {hash} merged", spec.scenario),
                merged_rows,
            ));
        }

        if let Some((title, rows)) = rows {
            println!("{}", rows_table(&title, &rows));
        }
        Ok(if quarantined > 0 { 3 } else { 0 })
    };
    match run() {
        Ok(code) => code,
        Err(e) => {
            eprintln!("error: {e}");
            1
        }
    }
}

fn usage() -> &'static str {
    "bicord — run a Wi-Fi/ZigBee coexistence scenario

USAGE:
  bicord [OPTIONS]
  bicord sweep --spec FILE [--shard K/N] [--merge] [--resume]
               (see `bicord sweep --help`)
  bicord analyze <summarize|diff-trace|diff-bench> ...
               (see `bicord analyze --help`)

OPTIONS:
  --mode <bicord|ecc-20|ecc-30|ecc-40|unprotected>  scheme      [bicord]
  --location <A|B|C|D>      ZigBee sender location (Fig. 6)     [A]
  --seconds <N>             simulated duration                  [10]
  --seed <N>                master seed                         [42]
  --burst <N>               packets per ZigBee burst            [5]
  --bytes <N>               MPDU bytes per packet               [50]
  --interval-ms <N>         mean Poisson burst interval         [200]
  --extra-node LOC:BURST:INTERVAL_MS  add a ZigBee pair (repeatable)
  --fault-profile K=V,...   inject faults; knobs: control-loss, cts-loss,
                            csi-fp (rates in [0,1]), churn-ms, churn-m
  --timeline                print an ASCII channel timeline
  --trace <PATH>            write a JSONL event timeline (docs/OBSERVABILITY.md)
  --help                    this text"
}

fn main() {
    let mut args = std::env::args().skip(1).peekable();
    if args.peek().map(String::as_str) == Some("analyze") {
        args.next();
        std::process::exit(bicord::analyze::cli::run(args));
    }
    if args.peek().map(String::as_str) == Some("sweep") {
        args.next();
        let options = match parse_sweep_args(args) {
            Ok(o) => o,
            Err(e) if e == "help" => {
                println!("{}", sweep_usage());
                return;
            }
            Err(e) => {
                eprintln!("error: {e}\n\n{}", sweep_usage());
                std::process::exit(2);
            }
        };
        std::process::exit(run_sweep(&options));
    }
    let options = match parse_args(args) {
        Ok(o) => o,
        Err(e) if e == "help" => {
            println!("{}", usage());
            return;
        }
        Err(e) => {
            eprintln!("error: {e}\n\n{}", usage());
            std::process::exit(2);
        }
    };
    let config = match build_config(&options) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };

    eprintln!(
        "running {} at {} for {}s (seed {})...",
        options.mode, options.location, options.seconds, options.seed
    );
    let results = match options.trace.as_deref() {
        Some(path) => {
            let header = TraceHeader::new(config.seed, &options.mode, config.duration.as_micros());
            let mut sink = match JsonlSink::create(path, &header) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("error: cannot write trace {}: {e}", path.display());
                    std::process::exit(2);
                }
            };
            let results = match CoexistenceSim::with_sink(config, &mut sink) {
                Ok(sim) => sim.run(),
                Err(e) => {
                    eprintln!("error: {e}");
                    std::process::exit(2);
                }
            };
            match sink.finish() {
                Ok(events) => eprintln!("trace: {} events -> {}", events, path.display()),
                Err(e) => {
                    eprintln!("error: trace write failed: {e}");
                    std::process::exit(2);
                }
            }
            results
        }
        None => match CoexistenceSim::new(config) {
            Ok(sim) => sim.run(),
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(2);
            }
        },
    };

    print!("{}", results.summary_text());

    if let Some(trace) = results.trace.as_ref() {
        let to = SimTime::ZERO
            + results
                .simulated
                .min(bicord::sim::SimDuration::from_secs(1));
        println!();
        println!("first second of channel activity:");
        print!("{}", trace.render(SimTime::ZERO, to, 110));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<CliOptions, String> {
        parse_args(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults_without_args() {
        let o = parse(&[]).unwrap();
        assert_eq!(o, CliOptions::default());
    }

    #[test]
    fn full_argument_set() {
        let o = parse(&[
            "--mode",
            "ecc-30",
            "--location",
            "c",
            "--seconds",
            "20",
            "--seed",
            "7",
            "--burst",
            "10",
            "--bytes",
            "75",
            "--interval-ms",
            "400",
            "--extra-node",
            "D:3:500",
            "--timeline",
        ])
        .unwrap();
        assert_eq!(o.mode, "ecc-30");
        assert_eq!(o.location, Location::C);
        assert_eq!(o.seconds, 20);
        assert_eq!(o.seed, 7);
        assert_eq!(o.burst, 10);
        assert_eq!(o.bytes, 75);
        assert_eq!(o.interval_ms, 400);
        assert_eq!(o.extra_nodes, vec![(Location::D, 3, 500)]);
        assert!(o.timeline);
    }

    #[test]
    fn trace_flag_takes_a_path() {
        let o = parse(&["--trace", "run.jsonl"]).unwrap();
        assert_eq!(o.trace.as_deref(), Some(std::path::Path::new("run.jsonl")));
        assert!(parse(&["--trace"]).is_err());
    }

    #[test]
    fn bad_location_is_an_error() {
        assert!(parse(&["--location", "Z"]).is_err());
    }

    #[test]
    fn missing_value_is_an_error() {
        assert!(parse(&["--seconds"]).is_err());
    }

    #[test]
    fn unknown_flag_is_an_error() {
        assert!(parse(&["--frobnicate"]).is_err());
    }

    #[test]
    fn help_is_special_cased() {
        assert_eq!(parse(&["--help"]).unwrap_err(), "help");
    }

    #[test]
    fn extra_node_validation() {
        assert!(parse_extra_node("D:3:500").is_ok());
        assert!(parse_extra_node("D:3").is_err());
        assert!(parse_extra_node("X:3:500").is_err());
        assert!(parse_extra_node("D:x:500").is_err());
        assert!(parse_extra_node("D:3:y").is_err());
    }

    #[test]
    fn fault_profile_parses_and_validates() {
        let p = parse_fault_profile("control-loss=0.2,cts-loss=0.1,csi-fp=0.05").unwrap();
        assert_eq!(p.control_loss, 0.2);
        assert_eq!(p.cts_loss, 0.1);
        assert_eq!(p.csi_false_positive, 0.05);
        assert_eq!(p.churn_period, None);

        let p = parse_fault_profile("churn-ms=500,churn-m=0.5").unwrap();
        assert_eq!(p.churn_period, Some(SimDuration::from_millis(500)));
        assert_eq!(p.churn_range_m, 0.5);

        assert!(parse_fault_profile("control-loss=1.5").is_err());
        assert!(parse_fault_profile("control-loss").is_err());
        assert!(parse_fault_profile("warp=1").is_err());
        assert!(parse_fault_profile("control-loss=x").is_err());
    }

    #[test]
    fn fault_profile_errors_name_every_valid_knob_and_the_format() {
        // Unknown key: the error must teach the full vocabulary and the
        // KEY=VALUE shape, not just reject.
        let err = parse_fault_profile("warp=1").unwrap_err();
        for key in ["control-loss", "cts-loss", "csi-fp", "churn-ms", "churn-m"] {
            assert!(err.contains(key), "unknown-key error lacks '{key}': {err}");
        }
        assert!(err.contains("KEY=VALUE"), "{err}");
        assert!(err.contains("'warp'"), "{err}");

        // Missing '=': same vocabulary plus a worked example.
        let err = parse_fault_profile("control-loss").unwrap_err();
        assert!(err.contains("KEY=VALUE"), "{err}");
        assert!(err.contains("churn-m"), "{err}");
        assert!(err.contains("example"), "{err}");

        // Bad number: names the knob, what it means, and its range.
        let err = parse_fault_profile("cts-loss=high").unwrap_err();
        assert!(err.contains("'cts-loss'"), "{err}");
        assert!(err.contains("[0,1]"), "{err}");

        // Out of range: says which ranges are valid.
        let err = parse_fault_profile("control-loss=1.5").unwrap_err();
        assert!(err.contains("out of range"), "{err}");
        assert!(err.contains("control-loss in [0,1]"), "{err}");
    }

    #[test]
    fn fault_profile_flag_reaches_the_config() {
        let o = parse(&["--fault-profile", "control-loss=0.3"]).unwrap();
        let c = build_config(&o).unwrap();
        assert_eq!(c.fault.control_loss, 0.3);
        assert!(c.fault.is_active());
        // Without the flag the config keeps the inactive default.
        let c = build_config(&CliOptions::default()).unwrap();
        assert!(!c.fault.is_active());
    }

    fn parse_sweep(args: &[&str]) -> Result<SweepOptions, String> {
        parse_sweep_args(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn sweep_args_parse() {
        let o = parse_sweep(&[
            "--spec",
            "s.json",
            "--shard",
            "2/4",
            "--merge",
            "--resume",
            "--out-dir",
            "artifacts",
            "--threads",
            "3",
        ])
        .unwrap();
        assert_eq!(o.spec.as_deref(), Some(std::path::Path::new("s.json")));
        assert_eq!(o.shard, Some(bicord::sweep::Shard::parse("2/4").unwrap()));
        assert!(o.merge && o.resume);
        assert_eq!(o.out_dir, std::path::PathBuf::from("artifacts"));
        assert_eq!(o.threads, Some(3));
    }

    #[test]
    fn sweep_requires_a_spec_or_listing() {
        assert!(parse_sweep(&[]).is_err());
        assert!(parse_sweep(&["--merge"]).is_err());
        let o = parse_sweep(&["--list-scenarios"]).unwrap();
        assert!(o.list_scenarios);
        // Merge-only: spec given, no shard.
        let o = parse_sweep(&["--spec", "s.json", "--merge"]).unwrap();
        assert!(o.merge);
        assert_eq!(o.shard, None);
    }

    #[test]
    fn sweep_rejects_bad_inputs() {
        assert!(parse_sweep(&["--spec", "s.json", "--shard", "0/4"]).is_err());
        assert!(parse_sweep(&["--spec", "s.json", "--threads", "0"]).is_err());
        assert!(parse_sweep(&["--spec", "s.json", "--warp"]).is_err());
        assert_eq!(parse_sweep(&["--help"]).unwrap_err(), "help");
    }

    #[test]
    fn sweep_supervision_flags_parse_and_validate() {
        let o = parse_sweep(&[
            "--spec",
            "s.json",
            "--cell-timeout",
            "2.5",
            "--max-retries",
            "3",
        ])
        .unwrap();
        assert_eq!(o.cell_timeout, Some(std::time::Duration::from_millis(2500)));
        assert_eq!(o.max_retries, 3);
        // Defaults mirror the library's RunPolicy.
        let o = parse_sweep(&["--spec", "s.json"]).unwrap();
        let policy = bicord::sweep::RunPolicy::default();
        assert_eq!(o.cell_timeout, policy.cell_timeout);
        assert_eq!(o.max_retries, policy.max_retries);
        // Zero or negative deadlines make no sense.
        assert!(parse_sweep(&["--spec", "s.json", "--cell-timeout", "0"]).is_err());
        assert!(parse_sweep(&["--spec", "s.json", "--cell-timeout", "-1"]).is_err());
        assert!(parse_sweep(&["--spec", "s.json", "--max-retries", "x"]).is_err());
    }

    #[test]
    fn config_building() {
        let mut o = CliOptions {
            mode: "unprotected".to_string(),
            ..CliOptions::default()
        };
        o.extra_nodes.push((Location::B, 7, 300));
        let c = build_config(&o).unwrap();
        assert_eq!(c.extra_nodes.len(), 1);
        assert_eq!(c.extra_nodes[0].burst.n_packets, 7);
        assert!(matches!(
            c.mode,
            bicord::scenario::config::Mode::Unprotected
        ));
        o.mode = "warp-drive".to_string();
        assert!(build_config(&o).is_err());
    }
}
